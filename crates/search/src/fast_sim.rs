//! Fast MPKI-only evaluation of candidate feature sets.

use std::fmt;
use std::sync::Arc;

use mrp_cache::policies::Lru;
use mrp_cache::replay::LlcRecording;
use mrp_cache::{Cache, CacheConfig, HierarchyConfig, ReplacementPolicy};
use mrp_core::mpppb::{Mpppb, MpppbConfig};
use mrp_core::{EngineConfig, Feature};
use mrp_trace::Workload;

/// The LLC-filtered access stream of one workload, recorded once and
/// replayed for every candidate.
///
/// A thin handle over the shared [`LlcRecording`] layer: the stream
/// reaching the LLC depends only on the trace and the levels above the
/// LLC, never on the LLC policy, so one recording serves every candidate
/// evaluation. (Prefetch fills are part of the stream; they are replayed
/// with their prefetch flag.) The `Arc` makes sharing a memoized
/// recording with the figure drivers free.
#[derive(Clone)]
pub struct LlcTrace {
    recording: Arc<LlcRecording>,
}

impl fmt::Debug for LlcTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LlcTrace")
            .field("name", &self.name())
            .field("accesses", &self.len())
            .field("instructions", &self.instructions())
            .finish()
    }
}

impl LlcTrace {
    /// Records the LLC stream of `workload` over `instructions`
    /// instructions (recording starts cold, as the paper's fast
    /// simulator does).
    pub fn record(workload: &Workload, seed: u64, instructions: u64) -> Self {
        let recording = LlcRecording::record(
            workload.name(),
            workload.trace(seed),
            &HierarchyConfig::single_thread(),
            0,
            instructions,
        );
        LlcTrace {
            recording: Arc::new(recording),
        }
    }

    /// Wraps an already-recorded (e.g. memoized) stream.
    pub fn from_recording(recording: Arc<LlcRecording>) -> Self {
        LlcTrace { recording }
    }

    /// Workload name.
    pub fn name(&self) -> &str {
        self.recording.name()
    }

    /// Recorded LLC accesses (demand + prefetch).
    pub fn len(&self) -> usize {
        self.recording.llc_len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Instructions the recording represents.
    pub fn instructions(&self) -> u64 {
        self.recording.instructions()
    }

    /// The block-address sequence of the stream, in replay order (used to
    /// construct Belady MIN reference policies).
    pub fn blocks(&self) -> Vec<u64> {
        self.recording.llc_blocks()
    }

    /// The underlying recording.
    pub fn recording(&self) -> &Arc<LlcRecording> {
        &self.recording
    }

    /// Replays the stream against `cache`, returning the demand-miss MPKI.
    ///
    /// Demand accesses are fed to the policy's `on_core_access` first,
    /// standing in for the full per-access history the hierarchy would
    /// provide (documented substitution: the fast simulator's PC history
    /// is LLC-filtered).
    pub fn replay(&self, cache: &mut Cache) -> f64 {
        self.recording.replay_llc(cache);
        cache.stats().demand_misses as f64 * 1000.0 / self.instructions() as f64
    }
}

/// Evaluates candidate feature sets against a suite of recorded streams.
pub struct FastEvaluator {
    traces: Vec<LlcTrace>,
    llc: CacheConfig,
    base_config: MpppbConfig,
    lru_mpkis: Vec<f64>,
}

/// Damping added to MPKI ratios so near-zero-MPKI workloads don't explode
/// the ratio objective.
const RATIO_EPS: f64 = 0.05;

impl fmt::Debug for FastEvaluator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FastEvaluator")
            .field("traces", &self.traces.len())
            .finish()
    }
}

impl FastEvaluator {
    /// Records the given workloads once. `instructions` bounds each
    /// recording.
    ///
    /// # Panics
    ///
    /// Panics if `workloads` is empty.
    pub fn new(workloads: &[Workload], seed: u64, instructions: u64) -> Self {
        assert!(!workloads.is_empty(), "need at least one workload");
        // Each recording is an independent simulation of its own trace
        // stream, so the suite records in parallel.
        let traces = mrp_runtime::par_map(workloads, |w| LlcTrace::record(w, seed, instructions));
        FastEvaluator::from_traces(traces)
    }

    /// Builds an evaluator from pre-recorded traces.
    pub fn from_traces(traces: Vec<LlcTrace>) -> Self {
        assert!(!traces.is_empty(), "need at least one trace");
        let llc = CacheConfig::llc_single();
        let lru_mpkis = mrp_runtime::par_map(&traces, |t| {
            let mut engine = EngineConfig::new(llc)
                .policy_with(|llc| Box::new(Lru::new(llc.sets(), llc.associativity())))
                .label("lru-reference")
                .build();
            t.replay(engine.cache_mut())
        });
        FastEvaluator {
            traces,
            llc,
            base_config: MpppbConfig::single_thread(&llc),
            lru_mpkis,
        }
    }

    /// Per-trace LRU reference MPKIs.
    pub fn lru_mpkis(&self) -> &[f64] {
        &self.lru_mpkis
    }

    /// The recorded traces.
    pub fn traces(&self) -> &[LlcTrace] {
        &self.traces
    }

    /// Evaluates MPPPB with `features` across the recorded suite,
    /// returning `(average MPKI, mean MPKI ratio vs. LRU)`.
    ///
    /// The plain average is what the paper's Figure 3 plots; the
    /// LRU-normalized ratio (lower is better, 1.0 = parity) weights every
    /// workload equally and is the selection objective, so that one
    /// enormous-MPKI workload cannot dominate the search.
    pub fn evaluate(&self, features: &[Feature]) -> (f64, f64) {
        // Each trace replays against its own policy instance in parallel;
        // the two sums then reduce in trace order, so the result is
        // bit-identical to the serial loop. (Fan-outs above — e.g. over
        // search candidates — make this call run serially on the worker;
        // see `mrp_runtime` on nesting.)
        let scores: Vec<(f64, f64)> = mrp_runtime::map_indexed(self.traces.len(), |i| {
            let config = self.base_config.clone().with_features(features.to_vec());
            let mut engine = EngineConfig::new(self.llc)
                .policy_with(move |llc| Box::new(Mpppb::new(config, llc)))
                .label("candidate")
                .build();
            let mpki = self.traces[i].replay(engine.cache_mut());
            (mpki, (mpki + RATIO_EPS) / (self.lru_mpkis[i] + RATIO_EPS))
        });
        let mut total_mpki = 0.0;
        let mut total_ratio = 0.0;
        for &(mpki, ratio) in &scores {
            total_mpki += mpki;
            total_ratio += ratio;
        }
        let n = self.traces.len() as f64;
        (total_mpki / n, total_ratio / n)
    }

    /// Average MPKI of MPPPB with `features` across the recorded suite.
    pub fn average_mpki(&self, features: &[Feature]) -> f64 {
        self.evaluate(features).0
    }

    /// The search objective: mean MPKI ratio vs. LRU (lower is better).
    pub fn objective(&self, features: &[Feature]) -> f64 {
        self.evaluate(features).1
    }

    /// Overrides the MPPPB policy parameters (thresholds/positions) used
    /// when evaluating candidates.
    pub fn set_base_config(&mut self, config: MpppbConfig) {
        self.base_config = config;
    }

    /// Average MPKI of an arbitrary policy builder across the suite (used
    /// for the LRU and MIN reference lines in Figure 3). The builder also
    /// receives the trace so stream-derived policies (MIN) can be built.
    ///
    /// The builder runs once per trace, possibly concurrently, so it must
    /// be `Fn + Sync`; per-trace MPKIs reduce in trace order.
    pub fn average_mpki_with<F>(&self, make_policy: F) -> f64
    where
        F: Fn(&CacheConfig, &LlcTrace) -> Box<dyn ReplacementPolicy + Send> + Sync,
    {
        let mpkis = mrp_runtime::par_map(&self.traces, |t| {
            let mut engine = EngineConfig::new(self.llc)
                .policy(make_policy(&self.llc, t))
                .label("reference")
                .build();
            t.replay(engine.cache_mut())
        });
        mpkis.iter().sum::<f64>() / self.traces.len() as f64
    }

    /// The LLC geometry candidates are evaluated on.
    pub fn llc(&self) -> &CacheConfig {
        &self.llc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_core::feature_sets;
    use mrp_trace::workloads;

    fn small_evaluator() -> FastEvaluator {
        let suite = workloads::suite();
        // One friendly and one hostile workload, small instruction budget.
        FastEvaluator::new(&[suite[3].clone(), suite[0].clone()], 7, 200_000)
    }

    #[test]
    fn recorded_stream_is_nonempty_and_replayable() {
        let e = small_evaluator();
        assert_eq!(e.traces().len(), 2);
        for t in e.traces() {
            assert!(!t.is_empty(), "{} stream empty", t.name());
            assert!(t.instructions() >= 200_000);
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let e = small_evaluator();
        let a = e.average_mpki(&feature_sets::table_1a());
        let b = e.average_mpki(&feature_sets::table_1a());
        assert_eq!(a, b);
    }

    #[test]
    fn lru_reference_is_computable() {
        let e = small_evaluator();
        let lru = e.average_mpki_with(|llc, _| Box::new(Lru::new(llc.sets(), llc.associativity())));
        assert!(lru > 0.0);
    }

    #[test]
    fn published_features_do_not_crash_and_give_finite_mpki() {
        let e = small_evaluator();
        for set in [
            feature_sets::table_1a(),
            feature_sets::table_1b(),
            feature_sets::table_2(),
        ] {
            let mpki = e.average_mpki(&set);
            assert!(mpki.is_finite() && mpki >= 0.0);
        }
    }
}

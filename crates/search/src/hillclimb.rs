//! Hill climbing over feature sets (§5.1).

use mrp_core::Feature;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fast_sim::FastEvaluator;
use crate::random::RandomFeatures;

/// Outcome of a hill-climbing run.
#[derive(Debug, Clone)]
pub struct HillClimbReport {
    /// The best feature set found.
    pub features: Vec<Feature>,
    /// Its average MPKI.
    pub mpki: f64,
    /// Its selection objective (mean MPKI ratio vs. LRU).
    pub objective: f64,
    /// MPKI of the starting set.
    pub initial_mpki: f64,
    /// Objective of the starting set.
    pub initial_objective: f64,
    /// Moves attempted.
    pub attempts: u32,
    /// Moves accepted (improved the objective).
    pub accepted: u32,
}

/// The paper's hill climber: "randomly chooses a feature from the current
/// set ... and changes it randomly by either replacing it with a randomly
/// generated feature, replacing it with a copy of another feature, or
/// slightly perturbing one of its parameters. If the change lowers average
/// MPKI, it is kept, otherwise it is discarded" (§5.1). Convergence is
/// declared after `patience` consecutive rejected moves.
#[derive(Debug)]
pub struct HillClimber {
    rng: StdRng,
    generator: RandomFeatures,
    patience: u32,
    max_attempts: u32,
}

impl HillClimber {
    /// Creates a climber; `patience` is the convergence window and
    /// `max_attempts` a hard cap on evaluated moves.
    pub fn new(seed: u64, patience: u32, max_attempts: u32) -> Self {
        HillClimber {
            rng: StdRng::seed_from_u64(seed),
            generator: RandomFeatures::new(seed ^ 0x5eed),
            patience,
            max_attempts,
        }
    }

    /// Proposes one mutated copy of `set`.
    fn propose(&mut self, set: &[Feature]) -> Vec<Feature> {
        let mut next = set.to_vec();
        let victim = self.rng.gen_range(0..next.len());
        match self.rng.gen_range(0..3u8) {
            0 => {
                next[victim] = self.generator.feature();
            }
            1 => {
                let source = self.rng.gen_range(0..next.len());
                next[victim] = next[source];
            }
            _ => {
                next[victim] = self.generator.perturb(&next[victim]);
            }
        }
        next
    }

    /// Runs the climb from `start`, optimizing the evaluator's selection
    /// objective (LRU-normalized MPKI ratio).
    pub fn climb(&mut self, evaluator: &FastEvaluator, start: Vec<Feature>) -> HillClimbReport {
        let (initial_mpki, initial_objective) = evaluator.evaluate(&start);
        let mut best = start;
        let mut best_mpki = initial_mpki;
        let mut best_objective = initial_objective;
        let mut stale = 0u32;
        let mut attempts = 0u32;
        let mut accepted = 0u32;
        while stale < self.patience && attempts < self.max_attempts {
            let candidate = self.propose(&best);
            let (mpki, objective) = evaluator.evaluate(&candidate);
            attempts += 1;
            if objective < best_objective {
                best = candidate;
                best_mpki = mpki;
                best_objective = objective;
                accepted += 1;
                stale = 0;
            } else {
                stale += 1;
            }
        }
        HillClimbReport {
            features: best,
            mpki: best_mpki,
            objective: best_objective,
            initial_mpki,
            initial_objective,
            attempts,
            accepted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_trace::workloads;

    #[test]
    fn climb_never_worsens_mpki() {
        let suite = workloads::suite();
        let evaluator = FastEvaluator::new(&[suite[4].clone()], 5, 120_000);
        let mut climber = HillClimber::new(11, 4, 12);
        let start = RandomFeatures::new(1).feature_set(8);
        let report = climber.climb(&evaluator, start);
        assert!(report.objective <= report.initial_objective);
        assert!(report.attempts <= 12);
        assert_eq!(report.features.len(), 8);
    }

    #[test]
    fn climb_is_deterministic() {
        let suite = workloads::suite();
        let evaluator = FastEvaluator::new(&[suite[0].clone()], 5, 80_000);
        let start = RandomFeatures::new(2).feature_set(6);
        let a = HillClimber::new(3, 3, 8).climb(&evaluator, start.clone());
        let b = HillClimber::new(3, 3, 8).climb(&evaluator, start);
        assert_eq!(a.features, b.features);
        assert_eq!(a.mpki, b.mpki);
    }
}

//! Process-global hierarchical counter/gauge registry.
//!
//! Names are dotted paths (`recording.memo.hits`); the registry is a
//! sorted map so snapshots iterate deterministically. Handles are
//! cheap `Arc` clones — call sites that increment in hot loops should
//! obtain a handle once (e.g. in a `OnceLock`) rather than looking up
//! by name per event.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing event counter.
///
/// Increments are relaxed atomics, and no-ops while telemetry is
/// disabled ([`crate::enabled`]), so a disabled counter costs one load
/// and a predictable branch.
#[derive(Clone, Debug)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n` events (no-op while telemetry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one event.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A level gauge with peak tracking (e.g. queue depth).
#[derive(Clone, Debug)]
pub struct Gauge {
    value: Arc<(AtomicI64, AtomicI64)>,
}

impl Gauge {
    /// Sets the level (no-op while telemetry is disabled).
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.value.0.store(v, Ordering::Relaxed);
            self.value.1.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Adjusts the level by `delta` (no-op while disabled).
    #[inline]
    pub fn add(&self, delta: i64) {
        if crate::enabled() {
            let now = self.value.0.fetch_add(delta, Ordering::Relaxed) + delta;
            self.value.1.fetch_max(now, Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.0.load(Ordering::Relaxed)
    }

    /// Highest level ever set/reached.
    pub fn peak(&self) -> i64 {
        self.value.1.load(Ordering::Relaxed)
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
}

fn registry() -> std::sync::MutexGuard<'static, BTreeMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        // Metric state is all atomics, consistent regardless of where a
        // panicking holder stopped; recover rather than cascade.
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The counter registered under `name`, created on first request.
///
/// # Panics
///
/// Panics if `name` is already registered as a gauge.
pub fn counter(name: &str) -> Counter {
    let found = {
        let mut map = registry();
        match map.entry(name.to_string()).or_insert_with(|| {
            Metric::Counter(Counter {
                value: Arc::new(AtomicU64::new(0)),
            })
        }) {
            Metric::Counter(c) => Some(c.clone()),
            Metric::Gauge(_) => None,
        }
    };
    found.unwrap_or_else(|| panic!("{name} is registered as a gauge, not a counter"))
}

/// The gauge registered under `name`, created on first request.
///
/// # Panics
///
/// Panics if `name` is already registered as a counter.
pub fn gauge(name: &str) -> Gauge {
    let found = {
        let mut map = registry();
        match map.entry(name.to_string()).or_insert_with(|| {
            Metric::Gauge(Gauge {
                value: Arc::new((AtomicI64::new(0), AtomicI64::new(i64::MIN))),
            })
        }) {
            Metric::Gauge(g) => Some(g.clone()),
            Metric::Counter(_) => None,
        }
    };
    found.unwrap_or_else(|| panic!("{name} is registered as a counter, not a gauge"))
}

/// A deterministic (name-sorted) snapshot of every registered metric:
/// counters as `(name, value, None)`, gauges as
/// `(name, value, Some(peak))`. Gauges that never recorded report peak
/// equal to their current value.
pub fn registry_snapshot() -> Vec<(String, i64, Option<i64>)> {
    let map = registry();
    map.iter()
        .map(|(name, metric)| match metric {
            Metric::Counter(c) => (name.clone(), c.get() as i64, None),
            Metric::Gauge(g) => {
                let peak = if g.peak() == i64::MIN {
                    g.get()
                } else {
                    g.peak()
                };
                (name.clone(), g.get(), Some(peak))
            }
        })
        .collect()
}

/// Zeroes every registered counter and gauge (handles stay valid).
pub(crate) fn reset_registry() {
    let map = registry();
    for metric in map.values() {
        match metric {
            Metric::Counter(c) => c.value.store(0, Ordering::Relaxed),
            Metric::Gauge(g) => {
                g.value.0.store(0, Ordering::Relaxed);
                g.value.1.store(i64::MIN, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test owns the global enabled flag to avoid races with
    // parallel tests in this binary; everything flag-dependent lives
    // here.
    #[test]
    fn disabled_metrics_are_no_ops_and_enabled_ones_record() {
        let _guard = crate::test_flag_lock();
        crate::set_enabled(false);
        let c = counter("test.registry.counter");
        let g = gauge("test.registry.gauge");
        c.add(5);
        c.incr();
        g.set(9);
        g.add(3);
        assert_eq!(c.get(), 0, "disabled counter must not record");
        assert_eq!(g.get(), 0, "disabled gauge must not record");

        crate::set_enabled(true);
        c.add(5);
        c.incr();
        assert_eq!(c.get(), 6);
        g.set(4);
        g.add(3);
        g.add(-2);
        assert_eq!(g.get(), 5);
        assert_eq!(g.peak(), 7);
        crate::set_enabled(false);

        // Same name returns the same underlying metric.
        assert_eq!(counter("test.registry.counter").get(), 6);
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let _ = counter("test.snap.b");
        let _ = counter("test.snap.a");
        let snap = registry_snapshot();
        let names: Vec<&str> = snap
            .iter()
            .map(|(n, _, _)| n.as_str())
            .filter(|n| n.starts_with("test.snap."))
            .collect();
        assert_eq!(names, vec!["test.snap.a", "test.snap.b"]);
    }

    #[test]
    #[should_panic(expected = "registered as a counter")]
    fn kind_mismatch_panics() {
        let _ = counter("test.kind.mismatch");
        let _ = gauge("test.kind.mismatch");
    }
}

//! A minimal JSON value: enough encoder + parser for run manifests.
//!
//! The repo's dependency policy is std-only infrastructure, so the
//! manifest layer carries its own ~200-line JSON instead of serde.
//! Scope is deliberately narrow: UTF-8 text, `\uXXXX` escapes are
//! emitted for control characters but surrogate pairs outside the BMP
//! are not synthesized (manifest strings are workload/policy names and
//! CLI args). Integers round-trip exactly — `U64`/`I64` are separate
//! variants from `F64`, because counters are u64 and `2^53`-adjacent
//! precision loss in a telemetry layer would be a silent lie.

use std::fmt::Write as _;

/// A parsed or to-be-rendered JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer (renders without decimal point).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point (always renders with `.` or exponent so it
    /// parses back as `F64`). Non-finite values render as `null`.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; insertion-ordered so rendering is deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Unsigned integer payload (accepts `U64` and integral `I64`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Numeric payload as f64 (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Renders compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // `{:?}` keeps a `.0` on integral floats, so the
                    // value parses back as F64, not U64.
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (possibly multi-byte).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if is_float {
            text.parse::<f64>()
                .map(Json::F64)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::I64)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        } else {
            text.parse::<u64>()
                .map(Json::U64)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for value in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::U64(0),
            Json::U64(u64::MAX),
            Json::I64(-42),
            Json::F64(1.0),
            Json::F64(-0.125),
            Json::F64(std::f64::consts::PI),
            Json::Str("hello \"world\"\n\t\\".into()),
            Json::Str("unicode: αβγ – ok".into()),
        ] {
            let text = value.render();
            assert_eq!(Json::parse(&text).unwrap(), value, "via {text}");
        }
    }

    #[test]
    fn u64_max_survives_exactly() {
        let text = Json::U64(u64::MAX).render();
        assert_eq!(text, "18446744073709551615");
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn integral_floats_stay_floats() {
        let text = Json::F64(2.0).render();
        assert_eq!(text, "2.0");
        assert_eq!(Json::parse(&text).unwrap(), Json::F64(2.0));
    }

    #[test]
    fn nested_structure_round_trips() {
        let value = Json::Obj(vec![
            ("schema".into(), Json::Str("v1".into())),
            (
                "cells".into(),
                Json::Arr(vec![
                    Json::Obj(vec![
                        ("w".into(), Json::Str("zipf.hot".into())),
                        ("mpki".into(), Json::F64(3.25)),
                    ]),
                    Json::Null,
                ]),
            ),
            ("count".into(), Json::U64(7)),
        ]);
        let text = value.render();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, value);
        assert_eq!(
            parsed.get("cells").and_then(|c| match c {
                Json::Arr(items) => items[0].get("mpki").and_then(Json::as_f64),
                _ => None,
            }),
            Some(3.25)
        );
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nope").is_err());
    }

    #[test]
    fn parse_accepts_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , -2.5e1 , \"\\u0041\" ] } ").unwrap();
        assert_eq!(
            v,
            Json::Obj(vec![(
                "a".into(),
                Json::Arr(vec![Json::U64(1), Json::F64(-25.0), Json::Str("A".into())])
            )])
        );
    }
}

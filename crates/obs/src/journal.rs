//! Schema-versioned orchestration state: the campaign **journal** and
//! the aggregated **campaign manifest**.
//!
//! The `mrp-orchestrate` control plane persists every scheduling
//! decision as one JSONL line appended to `journal.jsonl` inside the
//! campaign directory. The journal is the single source of truth for
//! resume: a killed orchestrator replays it on restart, re-verifies
//! `done` jobs against their run manifests, and continues exactly where
//! it stopped. The format follows the run-manifest conventions
//! ([`crate::manifest`]): line-oriented JSON objects tagged with a
//! `type`, a schema-carrying first line, and a hand-rolled [`Json`]
//! encoding so integers round-trip exactly.
//!
//! | `type`       | written when |
//! |--------------|--------------|
//! | `meta`       | campaign creation (schema, campaign name, timestamp) |
//! | `resume`     | an orchestrator restarts against an existing journal |
//! | `enqueue`    | a job enters the campaign (id, spec hash, full spec) |
//! | `running`    | a worker process was spawned (pid, attempt) |
//! | `done`       | a job completed (`via` = `run` / `dedupe` / `journal`) |
//! | `fail`       | a worker exited nonzero or vanished (attempt, reason) |
//! | `invalidate` | a journaled `done` no longer verifies (manifest gone) |
//!
//! Crash tolerance: a `SIGKILL` can cut the final append mid-line.
//! [`read_journal`] therefore tolerates an unparseable **final** line,
//! reporting it as `truncated` with the byte offset where clean content
//! ends so the writer can drop the partial tail before appending again.
//! A malformed line anywhere else is corruption and an error.
//!
//! The campaign manifest (`campaign.jsonl`) is the deterministic
//! aggregate the orchestrator rebuilds from done-jobs' run manifests:
//! no timestamps, paths, or counters — only job identity, spec hashes,
//! and per-job cells/scalars — so an interrupted-and-resumed campaign
//! renders **bit-identically** to an uninterrupted one.
//! [`validate_campaign`] enforces its shape.

use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::Json;

/// Current journal schema identifier.
pub const JOURNAL_SCHEMA: &str = "mrp-orchestrate-journal-v1";

/// Current campaign-manifest schema identifier.
pub const CAMPAIGN_SCHEMA: &str = "mrp-campaign-manifest-v1";

/// One journaled scheduling event. Field order in [`to_json`] is fixed,
/// so render → parse → re-render is byte-identical.
///
/// [`to_json`]: JournalEntry::to_json
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEntry {
    /// First line of every journal: schema + campaign identity.
    Meta {
        /// Campaign name (not the directory — aggregates must not embed
        /// paths).
        campaign: String,
        /// Creation time, unix seconds.
        timestamp: u64,
    },
    /// An orchestrator restarted against this journal.
    Resume {
        /// Restart time, unix seconds.
        timestamp: u64,
    },
    /// A job entered the campaign.
    Enqueue {
        /// Job id, unique within the campaign.
        job: String,
        /// Hex spec hash (the dedup key; stable across arg ordering).
        spec_hash: String,
        /// The full job spec, opaque to this layer (the orchestrator's
        /// `JobSpec` JSON) — resume rebuilds the work list from it.
        spec: Json,
    },
    /// A worker process was spawned for the job.
    Running {
        /// Job id.
        job: String,
        /// Worker OS process id.
        pid: u64,
        /// 1-based attempt number.
        attempt: u64,
    },
    /// The job completed and its run manifest verified.
    Done {
        /// Job id.
        job: String,
        /// Hex spec hash, re-recorded so resume can verify the manifest
        /// still matches the spec.
        spec_hash: String,
        /// Run-manifest file name (relative to the campaign's `runs/`).
        manifest: String,
        /// How completion was established: `run` (a worker finished),
        /// `dedupe` (an existing manifest matched the spec hash), or
        /// `journal` (a resume re-verified a journaled done).
        via: String,
    },
    /// A worker exited unsuccessfully; the job may be retried.
    Fail {
        /// Job id.
        job: String,
        /// 1-based attempt number that failed.
        attempt: u64,
        /// Exit status or validation failure description.
        reason: String,
    },
    /// A journaled `done` no longer verifies; the job is pending again.
    Invalidate {
        /// Job id.
        job: String,
        /// Why the done record was discarded.
        reason: String,
    },
}

impl JournalEntry {
    /// The entry's `type` tag.
    pub fn kind(&self) -> &'static str {
        match self {
            JournalEntry::Meta { .. } => "meta",
            JournalEntry::Resume { .. } => "resume",
            JournalEntry::Enqueue { .. } => "enqueue",
            JournalEntry::Running { .. } => "running",
            JournalEntry::Done { .. } => "done",
            JournalEntry::Fail { .. } => "fail",
            JournalEntry::Invalidate { .. } => "invalidate",
        }
    }

    /// The job id this entry concerns, if any.
    pub fn job(&self) -> Option<&str> {
        match self {
            JournalEntry::Meta { .. } | JournalEntry::Resume { .. } => None,
            JournalEntry::Enqueue { job, .. }
            | JournalEntry::Running { job, .. }
            | JournalEntry::Done { job, .. }
            | JournalEntry::Fail { job, .. }
            | JournalEntry::Invalidate { job, .. } => Some(job),
        }
    }

    /// Canonical JSON form (fixed field order).
    pub fn to_json(&self) -> Json {
        let s = |v: &str| Json::Str(v.to_string());
        match self {
            JournalEntry::Meta {
                campaign,
                timestamp,
            } => Json::Obj(vec![
                ("type".into(), s("meta")),
                ("schema".into(), s(JOURNAL_SCHEMA)),
                ("campaign".into(), s(campaign)),
                ("timestamp_unix_s".into(), Json::U64(*timestamp)),
            ]),
            JournalEntry::Resume { timestamp } => Json::Obj(vec![
                ("type".into(), s("resume")),
                ("timestamp_unix_s".into(), Json::U64(*timestamp)),
            ]),
            JournalEntry::Enqueue {
                job,
                spec_hash,
                spec,
            } => Json::Obj(vec![
                ("type".into(), s("enqueue")),
                ("job".into(), s(job)),
                ("spec_hash".into(), s(spec_hash)),
                ("spec".into(), spec.clone()),
            ]),
            JournalEntry::Running { job, pid, attempt } => Json::Obj(vec![
                ("type".into(), s("running")),
                ("job".into(), s(job)),
                ("pid".into(), Json::U64(*pid)),
                ("attempt".into(), Json::U64(*attempt)),
            ]),
            JournalEntry::Done {
                job,
                spec_hash,
                manifest,
                via,
            } => Json::Obj(vec![
                ("type".into(), s("done")),
                ("job".into(), s(job)),
                ("spec_hash".into(), s(spec_hash)),
                ("manifest".into(), s(manifest)),
                ("via".into(), s(via)),
            ]),
            JournalEntry::Fail {
                job,
                attempt,
                reason,
            } => Json::Obj(vec![
                ("type".into(), s("fail")),
                ("job".into(), s(job)),
                ("attempt".into(), Json::U64(*attempt)),
                ("reason".into(), s(reason)),
            ]),
            JournalEntry::Invalidate { job, reason } => Json::Obj(vec![
                ("type".into(), s("invalidate")),
                ("job".into(), s(job)),
                ("reason".into(), s(reason)),
            ]),
        }
    }

    /// Parses one journal line. Accepts fields in any order; rejects
    /// unknown `type` tags and unknown schema majors on `meta`.
    pub fn from_json(record: &Json) -> Result<JournalEntry, String> {
        let kind = record
            .get("type")
            .and_then(Json::as_str)
            .ok_or("journal record missing type")?;
        let text = |key: &str| -> Result<String, String> {
            record
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{kind} record missing string {key}"))
        };
        let int = |key: &str| -> Result<u64, String> {
            record
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{kind} record missing integer {key}"))
        };
        match kind {
            "meta" => {
                let schema = text("schema")?;
                if schema != JOURNAL_SCHEMA {
                    return Err(format!(
                        "unknown journal schema {schema:?} (expected {JOURNAL_SCHEMA:?})"
                    ));
                }
                Ok(JournalEntry::Meta {
                    campaign: text("campaign")?,
                    timestamp: int("timestamp_unix_s")?,
                })
            }
            "resume" => Ok(JournalEntry::Resume {
                timestamp: int("timestamp_unix_s")?,
            }),
            "enqueue" => Ok(JournalEntry::Enqueue {
                job: text("job")?,
                spec_hash: text("spec_hash")?,
                spec: record.get("spec").cloned().ok_or("enqueue missing spec")?,
            }),
            "running" => Ok(JournalEntry::Running {
                job: text("job")?,
                pid: int("pid")?,
                attempt: int("attempt")?,
            }),
            "done" => Ok(JournalEntry::Done {
                job: text("job")?,
                spec_hash: text("spec_hash")?,
                manifest: text("manifest")?,
                via: text("via")?,
            }),
            "fail" => Ok(JournalEntry::Fail {
                job: text("job")?,
                attempt: int("attempt")?,
                reason: text("reason")?,
            }),
            "invalidate" => Ok(JournalEntry::Invalidate {
                job: text("job")?,
                reason: text("reason")?,
            }),
            other => Err(format!("unknown journal record type {other:?}")),
        }
    }

    /// Renders the canonical single-line form (no trailing newline).
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Parses one rendered line.
    pub fn parse(line: &str) -> Result<JournalEntry, String> {
        JournalEntry::from_json(&Json::parse(line)?)
    }
}

/// Result of replaying a journal file.
#[derive(Debug)]
pub struct JournalRead {
    /// Cleanly parsed entries, in append order (first is always `Meta`).
    pub entries: Vec<JournalEntry>,
    /// The unparseable partial final line, if the last append was cut
    /// mid-write (orchestrator killed). `None` on a clean journal.
    pub truncated: Option<String>,
    /// Byte offset where clean content ends. Equal to the text length on
    /// a clean journal; on truncation, the offset the writer should
    /// truncate the file to before appending.
    pub clean_len: usize,
}

/// Replays a journal document, tolerating a truncated final line.
///
/// The first line must be a `meta` entry carrying [`JOURNAL_SCHEMA`]. A
/// line that fails to parse is tolerated only in final position (the
/// partial append of a killed writer); anywhere else it is an error.
pub fn read_journal(text: &str) -> Result<JournalRead, String> {
    if text.is_empty() {
        return Err("empty journal".into());
    }
    let mut entries = Vec::new();
    let mut truncated = None;
    let mut clean_len = 0usize;
    let mut offset = 0usize;
    let mut lines = text.split_inclusive('\n').enumerate().peekable();
    while let Some((i, raw)) = lines.next() {
        let line = raw.strip_suffix('\n').unwrap_or(raw);
        let is_last = lines.peek().is_none();
        match JournalEntry::parse(line) {
            Ok(entry) => {
                if i == 0 && !matches!(entry, JournalEntry::Meta { .. }) {
                    return Err("journal line 1 is not a meta record".into());
                }
                if i > 0 && matches!(entry, JournalEntry::Meta { .. }) {
                    return Err(format!("journal line {}: duplicate meta record", i + 1));
                }
                entries.push(entry);
                clean_len = offset + raw.len();
            }
            Err(_) if is_last => {
                // Partial final append from a killed writer: report it,
                // don't abort the replay.
                truncated = Some(line.to_string());
            }
            Err(e) => return Err(format!("journal line {}: {e}", i + 1)),
        }
        offset += raw.len();
    }
    if entries.is_empty() {
        return Err("journal has no parseable entries".into());
    }
    Ok(JournalRead {
        entries,
        truncated,
        clean_len,
    })
}

/// Append-only journal writer. Every entry is one line written and
/// flushed immediately, so a killed process loses at most the line being
/// written — which [`read_journal`] tolerates.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: std::fs::File,
}

impl Journal {
    /// Creates a fresh journal at `path`, writing the `meta` line.
    pub fn create(path: impl Into<PathBuf>, campaign: &str) -> io::Result<Journal> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = std::fs::OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)?;
        let mut journal = Journal { path, file };
        journal.append(&JournalEntry::Meta {
            campaign: campaign.to_string(),
            timestamp: now_unix(),
        })?;
        Ok(journal)
    }

    /// Opens an existing journal for appending, first truncating the
    /// file to `clean_len` bytes (from [`JournalRead`]) so a partial
    /// final line from a previous kill is dropped rather than corrupting
    /// the next append.
    pub fn open_append(path: impl Into<PathBuf>, clean_len: u64) -> io::Result<Journal> {
        let path = path.into();
        let file = std::fs::OpenOptions::new().write(true).open(&path)?;
        file.set_len(clean_len)?;
        drop(file);
        let file = std::fs::OpenOptions::new().append(true).open(&path)?;
        Ok(Journal { path, file })
    }

    /// Appends one entry and flushes it.
    pub fn append(&mut self, entry: &JournalEntry) -> io::Result<()> {
        let mut line = entry.render();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.flush()
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn now_unix() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Shape summary of a validated journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalSummary {
    /// Campaign name from the meta line.
    pub campaign: String,
    /// Total entries.
    pub entries: usize,
    /// Number of `enqueue` entries (distinct jobs if the journal is
    /// well-formed).
    pub enqueued: usize,
    /// Number of `done` entries.
    pub done: usize,
    /// Number of `fail` entries.
    pub failed: usize,
}

/// Strictly validates a journal document: every line must parse (CI runs
/// this on completed campaigns, where a truncated tail would mean the
/// final append was cut after a claimed-successful exit).
pub fn validate_journal(text: &str) -> Result<JournalSummary, String> {
    let read = read_journal(text)?;
    if let Some(partial) = read.truncated {
        return Err(format!("journal ends in a truncated line: {partial:?}"));
    }
    let campaign = match &read.entries[0] {
        JournalEntry::Meta { campaign, .. } => campaign.clone(),
        _ => unreachable!("read_journal enforces meta first"),
    };
    Ok(JournalSummary {
        campaign,
        entries: read.entries.len(),
        enqueued: read
            .entries
            .iter()
            .filter(|e| matches!(e, JournalEntry::Enqueue { .. }))
            .count(),
        done: read
            .entries
            .iter()
            .filter(|e| matches!(e, JournalEntry::Done { .. }))
            .count(),
        failed: read
            .entries
            .iter()
            .filter(|e| matches!(e, JournalEntry::Fail { .. }))
            .count(),
    })
}

/// Shape summary of a validated campaign manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSummary {
    /// Campaign name from the meta line.
    pub campaign: String,
    /// Number of `job` lines.
    pub jobs: usize,
    /// Number of `cell` lines.
    pub cells: usize,
    /// Number of `scalar` lines.
    pub scalars: usize,
}

/// Parses and schema-checks an aggregated campaign manifest.
///
/// Enforces: a first `meta` line carrying [`CAMPAIGN_SCHEMA`] plus a
/// `campaign` name and integer `jobs` count; `job` records with `job`,
/// `spec_hash`, `bin`, `status`; `cell` records with `job`, `workload`,
/// `policy`, and an object `metrics`; `scalar` records with `job`,
/// `name`, `value`; and that the meta `jobs` count matches the number of
/// `job` lines.
pub fn validate_campaign(text: &str) -> Result<CampaignSummary, String> {
    let mut lines = text.lines().enumerate();
    let (_, first) = lines.next().ok_or("empty campaign manifest")?;
    let meta = Json::parse(first).map_err(|e| format!("line 1: {e}"))?;
    if meta.get("type").and_then(Json::as_str) != Some("meta") {
        return Err("line 1 is not a meta record".into());
    }
    let schema = meta
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("meta line missing schema")?;
    if schema != CAMPAIGN_SCHEMA {
        return Err(format!(
            "unknown schema {schema:?} (expected {CAMPAIGN_SCHEMA:?})"
        ));
    }
    let campaign = meta
        .get("campaign")
        .and_then(Json::as_str)
        .ok_or("meta line missing campaign")?
        .to_string();
    let declared_jobs = meta
        .get("jobs")
        .and_then(Json::as_u64)
        .ok_or("meta line missing integer jobs")? as usize;

    let mut summary = CampaignSummary {
        campaign,
        jobs: 0,
        cells: 0,
        scalars: 0,
    };
    for (i, line) in lines {
        let n = i + 1;
        let record = Json::parse(line).map_err(|e| format!("line {n}: {e}"))?;
        let kind = record
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {n}: missing type"))?;
        let require = |key: &str| -> Result<(), String> {
            record
                .get(key)
                .map(|_| ())
                .ok_or_else(|| format!("line {n}: {kind} record missing {key}"))
        };
        match kind {
            "job" => {
                require("job")?;
                require("spec_hash")?;
                require("bin")?;
                require("status")?;
                summary.jobs += 1;
            }
            "cell" => {
                require("job")?;
                require("workload")?;
                require("policy")?;
                match record.get("metrics") {
                    Some(Json::Obj(_)) => {}
                    _ => return Err(format!("line {n}: cell metrics must be an object")),
                }
                summary.cells += 1;
            }
            "scalar" => {
                require("job")?;
                require("name")?;
                require("value")?;
                summary.scalars += 1;
            }
            "meta" => return Err(format!("line {n}: duplicate meta record")),
            other => return Err(format!("line {n}: unknown record type {other:?}")),
        }
    }
    if summary.jobs != declared_jobs {
        return Err(format!(
            "meta declares {declared_jobs} jobs but {} job records present",
            summary.jobs
        ));
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<JournalEntry> {
        vec![
            JournalEntry::Meta {
                campaign: "unit".into(),
                timestamp: 1_700_000_000,
            },
            JournalEntry::Enqueue {
                job: "cell.zipf.hot.lru".into(),
                spec_hash: "00d1f2e3c4b5a697".into(),
                spec: Json::Obj(vec![
                    ("bin".into(), Json::Str("self".into())),
                    ("id".into(), Json::Str("cell.zipf.hot.lru".into())),
                ]),
            },
            JournalEntry::Running {
                job: "cell.zipf.hot.lru".into(),
                pid: 4242,
                attempt: 1,
            },
            JournalEntry::Fail {
                job: "cell.zipf.hot.lru".into(),
                attempt: 1,
                reason: "signal: 9".into(),
            },
            JournalEntry::Done {
                job: "cell.zipf.hot.lru".into(),
                spec_hash: "00d1f2e3c4b5a697".into(),
                manifest: "orch-cell.zipf.hot.lru-1700000001-7.jsonl".into(),
                via: "run".into(),
            },
            JournalEntry::Resume {
                timestamp: 1_700_000_100,
            },
            JournalEntry::Invalidate {
                job: "cell.zipf.hot.lru".into(),
                reason: "manifest missing".into(),
            },
        ]
    }

    fn render_all(entries: &[JournalEntry]) -> String {
        let mut out = String::new();
        for e in entries {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }

    #[test]
    fn entries_round_trip_bit_equal() {
        for entry in sample_entries() {
            let line = entry.render();
            let parsed = JournalEntry::parse(&line).expect("parse");
            assert_eq!(parsed, entry);
            assert_eq!(parsed.render(), line, "re-render must be byte-identical");
        }
    }

    #[test]
    fn read_journal_replays_clean_files() {
        let entries = sample_entries();
        let text = render_all(&entries);
        let read = read_journal(&text).expect("clean journal");
        assert_eq!(read.entries, entries);
        assert!(read.truncated.is_none());
        assert_eq!(read.clean_len, text.len());
    }

    #[test]
    fn truncated_final_line_is_tolerated_not_fatal() {
        let entries = sample_entries();
        let text = render_all(&entries);
        // Cut the final line mid-write, as a SIGKILL would.
        let last_line_start = text[..text.len() - 1].rfind('\n').unwrap() + 1;
        let cut = last_line_start + 10;
        let read = read_journal(&text[..cut]).expect("truncation tolerated");
        assert_eq!(read.entries.len(), entries.len() - 1);
        assert_eq!(read.clean_len, last_line_start);
        assert!(read.truncated.is_some());
    }

    #[test]
    fn malformed_middle_line_is_an_error() {
        let entries = sample_entries();
        let mut text = String::new();
        text.push_str(&entries[0].render());
        text.push_str("\n{broken\n");
        text.push_str(&entries[1].render());
        text.push('\n');
        assert!(read_journal(&text).is_err());
    }

    #[test]
    fn journal_must_start_with_meta() {
        let e = JournalEntry::Resume { timestamp: 1 };
        assert!(read_journal(&format!("{}\n", e.render())).is_err());
        let meta = sample_entries().remove(0);
        let double = format!("{}\n{}\n", meta.render(), meta.render());
        assert!(read_journal(&double).is_err(), "duplicate meta");
    }

    #[test]
    fn unknown_schema_and_type_are_rejected() {
        let line = r#"{"type":"meta","schema":"mrp-orchestrate-journal-v999","campaign":"x","timestamp_unix_s":1}"#;
        assert!(JournalEntry::parse(line).is_err());
        assert!(JournalEntry::parse(r#"{"type":"martian"}"#).is_err());
    }

    #[test]
    fn writer_creates_appends_and_reopens() {
        let dir = std::env::temp_dir().join(format!("mrp-journal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("journal.jsonl");
        let mut journal = Journal::create(&path, "writer-test").expect("create");
        journal
            .append(&JournalEntry::Resume { timestamp: 2 })
            .expect("append");
        drop(journal);

        // Simulate a partial final append, then reopen: the partial line
        // must be dropped and the next append start on a clean line.
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str("{\"type\":\"done\",\"job\":\"x");
        std::fs::write(&path, &text).expect("inject partial line");
        let read = read_journal(&std::fs::read_to_string(&path).unwrap()).expect("tolerant");
        assert!(read.truncated.is_some());
        let mut journal = Journal::open_append(&path, read.clean_len as u64).expect("reopen");
        journal
            .append(&JournalEntry::Resume { timestamp: 3 })
            .expect("append after truncation");
        let final_read = read_journal(&std::fs::read_to_string(&path).unwrap()).expect("clean");
        assert!(final_read.truncated.is_none());
        assert_eq!(final_read.entries.len(), 3);
        assert!(validate_journal(&std::fs::read_to_string(&path).unwrap()).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_journal_rejects_truncation_and_counts() {
        let entries = sample_entries();
        let text = render_all(&entries);
        let summary = validate_journal(&text).expect("valid");
        assert_eq!(summary.campaign, "unit");
        assert_eq!(summary.entries, 7);
        assert_eq!(summary.enqueued, 1);
        assert_eq!(summary.done, 1);
        assert_eq!(summary.failed, 1);
        assert!(validate_journal(&text[..text.len() - 3]).is_err());
    }

    fn campaign_text() -> String {
        [
            format!(
                r#"{{"type":"meta","schema":"{CAMPAIGN_SCHEMA}","campaign":"unit","jobs":1}}"#
            ),
            r#"{"type":"job","job":"a","spec_hash":"1234","bin":"self","status":"ok"}"#.into(),
            r#"{"type":"cell","job":"a","workload":"zipf.hot","policy":"lru","metrics":{"mpki":3.5}}"#.into(),
            r#"{"type":"scalar","job":"a","name":"golden.match","value":1.0}"#.into(),
        ]
        .join("\n")
    }

    #[test]
    fn campaign_manifest_validates_and_counts() {
        let summary = validate_campaign(&campaign_text()).expect("valid campaign");
        assert_eq!(summary.campaign, "unit");
        assert_eq!(summary.jobs, 1);
        assert_eq!(summary.cells, 1);
        assert_eq!(summary.scalars, 1);
    }

    #[test]
    fn campaign_manifest_rejects_malformed_documents() {
        assert!(validate_campaign("").is_err());
        let wrong_count = campaign_text().replace("\"jobs\":1", "\"jobs\":2");
        assert!(validate_campaign(&wrong_count).is_err());
        let missing_job_field = campaign_text().replace("\"status\":\"ok\"", "\"state\":\"ok\"");
        assert!(validate_campaign(&missing_job_field).is_err());
        let bad_metrics = campaign_text().replace(r#"{"mpki":3.5}"#, "7");
        assert!(validate_campaign(&bad_metrics).is_err());
    }
}

//! Run telemetry for the multiperspective reuse prediction stack.
//!
//! Every production training/inference system carries an observability
//! layer; this crate is that layer for the simulation stack, std-only
//! and dependency-free. Three pieces:
//!
//! * [`registry`] — process-global hierarchical **counters** and
//!   **gauges** with dotted names (`recording.memo.hits`,
//!   `runtime.jobs`). Atomic, and no-ops while telemetry is disabled,
//!   so instrumented hot paths cost one relaxed load + branch when a
//!   driver runs without `--metrics`.
//! * [`phase`] — scoped wall-clock **phase timers** (`record`,
//!   `replay`, `simulate`, `report`): a guard accumulates its elapsed
//!   time into a per-phase total on drop. Concurrent guards from pool
//!   workers sum, so parallel phases read as aggregate busy time.
//! * [`manifest`] — a schema-versioned **JSONL run manifest** writer
//!   ([`RunManifest`]) capturing CLI args, `git describe`, thread
//!   count, per-cell results (workload × policy → metrics), per-phase
//!   wall-clock, and a snapshot of every registered counter and gauge.
//!   [`manifest::validate`] re-parses and schema-checks a manifest
//!   (used by the `manifest_check` driver and the round-trip tests).
//!
//! Telemetry is **opt-in**: everything is disabled until
//! [`set_enabled`]`(true)` (the experiment drivers wire their
//! `--metrics` flag here). Committed goldens and benchmark numbers are
//! bit-identical either way because instrumentation never feeds back
//! into simulation state.
//!
//! JSON encoding/parsing is the minimal hand-rolled [`json::Json`]
//! value type — no serde, keeping the crate std-only per the repo's
//! dependency policy.

pub mod fleet;
pub mod journal;
pub mod json;
pub mod manifest;
pub mod phase;
pub mod registry;

pub use fleet::{FleetManifest, ShardTelemetry, FLEET_SCHEMA};
pub use journal::{
    read_journal, validate_campaign, validate_journal, CampaignSummary, Journal, JournalEntry,
    JournalRead, JournalSummary, CAMPAIGN_SCHEMA, JOURNAL_SCHEMA,
};
pub use json::Json;
pub use manifest::{validate, validate_dir, ManifestSummary, RunManifest, SCHEMA};
pub use phase::{phase, phases_snapshot, PhaseGuard, PhaseStat};
pub use registry::{counter, gauge, registry_snapshot, Counter, Gauge};

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-global telemetry switch; everything is a no-op while false.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether telemetry is currently recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns telemetry on or off process-wide (the drivers' `--metrics`
/// flag). Counters, gauges, and phase guards created while disabled
/// still exist — they just don't record.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Resets all telemetry state: zeroes every counter/gauge and clears
/// accumulated phases. For tests and for drivers that emit several
/// manifests from one process.
pub fn reset() {
    registry::reset_registry();
    phase::reset_phases();
}

/// Serializes tests that toggle the process-global [`enabled`] flag.
#[cfg(test)]
pub(crate) fn test_flag_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

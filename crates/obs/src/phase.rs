//! Scoped phase timers.
//!
//! A [`phase`] guard measures the wall-clock time between its creation
//! and drop and folds it into a process-global per-phase accumulator.
//! The experiment stack uses a small fixed vocabulary — `record`,
//! `replay`, `simulate`, `report` — but names are free-form.
//!
//! Guards may be live concurrently on many pool workers; their
//! durations sum, so a phase's total reads as aggregate busy time
//! (it can exceed the run's wall-clock on a parallel run — that is the
//! utilization signal, not a bug).

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Accumulated time of one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStat {
    /// Total accumulated nanoseconds across all guards.
    pub total_ns: u128,
    /// Number of guards that completed.
    pub count: u64,
}

fn phases() -> &'static Mutex<BTreeMap<String, PhaseStat>> {
    static PHASES: OnceLock<Mutex<BTreeMap<String, PhaseStat>>> = OnceLock::new();
    PHASES.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Live scope of one timed phase; records on drop.
#[must_use = "a phase guard measures until it is dropped"]
#[derive(Debug)]
pub struct PhaseGuard {
    // None while telemetry is disabled: the guard is then fully inert
    // (no clock reads, no map lock).
    armed: Option<(&'static str, Instant)>,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some((name, start)) = self.armed.take() {
            let elapsed = start.elapsed().as_nanos();
            let mut map = phases().lock().expect("obs phases poisoned");
            let stat = map.entry(name.to_string()).or_insert(PhaseStat {
                total_ns: 0,
                count: 0,
            });
            stat.total_ns += elapsed;
            stat.count += 1;
        }
    }
}

/// Starts timing `name`; the returned guard records on drop. Inert
/// (two loads, no clock read) while telemetry is disabled.
#[inline]
pub fn phase(name: &'static str) -> PhaseGuard {
    PhaseGuard {
        armed: crate::enabled().then(|| (name, Instant::now())),
    }
}

/// Deterministic (name-sorted) snapshot of every phase recorded so far.
pub fn phases_snapshot() -> Vec<(String, PhaseStat)> {
    let map = phases().lock().expect("obs phases poisoned");
    map.iter().map(|(k, v)| (k.clone(), *v)).collect()
}

/// Clears all accumulated phases.
pub(crate) fn reset_phases() {
    phases().lock().expect("obs phases poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_guard_is_inert_and_enabled_guard_accumulates() {
        let _guard = crate::test_flag_lock();
        crate::set_enabled(false);
        drop(phase("test.phase.a"));
        assert!(
            !phases_snapshot().iter().any(|(n, _)| n == "test.phase.a"),
            "disabled phase must not record"
        );

        crate::set_enabled(true);
        {
            let _g = phase("test.phase.a");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        drop(phase("test.phase.a"));
        crate::set_enabled(false);

        let snap = phases_snapshot();
        let (_, stat) = snap
            .iter()
            .find(|(n, _)| n == "test.phase.a")
            .expect("phase recorded");
        assert_eq!(stat.count, 2);
        assert!(stat.total_ns >= 1_000_000, "slept 1ms, got {stat:?}");
    }
}

//! The serving fleet's schema-versioned telemetry manifest.
//!
//! `mrp-serve` periodically snapshots its shard fleet into one JSON
//! document (schema [`FLEET_SCHEMA`]) — the machine-readable face of the
//! serving telemetry plane, next to the live registry counters. The
//! `status` subcommand and `manifest_check --fleet` both consume it
//! through [`validate`], so the schema is checked at the same layer as
//! the run-manifest and journal schemas.
//!
//! One document per write (atomic rename by the caller), not JSONL: a
//! fleet snapshot supersedes the previous one, unlike the append-only
//! run manifests.

use crate::json::Json;

/// Schema tag stamped into (and required of) every fleet manifest.
pub const FLEET_SCHEMA: &str = "mrp-fleet-manifest-v1";

/// Telemetry for one shard at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardTelemetry {
    /// Shard index.
    pub shard: u64,
    /// Tenants routed to this shard.
    pub tenants: u64,
    /// Accesses processed since the fleet started.
    pub processed: u64,
    /// LLC hits among them.
    pub hits: u64,
    /// LLC misses that filled.
    pub misses: u64,
    /// Misses the policy bypassed.
    pub bypassed: u64,
    /// Largest ingest-queue depth any round left on this shard.
    pub queue_depth_peak: u64,
    /// Shard drain throughput: accesses per second of serving busy time
    /// (time inside the engine drain, excluding simulated-client
    /// traffic generation).
    pub accesses_per_sec: f64,
    /// Aggregated per-decision confidence histogram (fixed bins,
    /// strongly-reuse to strongly-bypass); empty when the fleet runs
    /// with confidence tracking off.
    pub confidence: Vec<u64>,
}

impl ShardTelemetry {
    /// Demand hit rate in `[0, 1]` (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.processed == 0 {
            0.0
        } else {
            self.hits as f64 / self.processed as f64
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("shard".into(), Json::U64(self.shard)),
            ("tenants".into(), Json::U64(self.tenants)),
            ("processed".into(), Json::U64(self.processed)),
            ("hits".into(), Json::U64(self.hits)),
            ("misses".into(), Json::U64(self.misses)),
            ("bypassed".into(), Json::U64(self.bypassed)),
            ("hit_rate".into(), Json::F64(self.hit_rate())),
            ("queue_depth_peak".into(), Json::U64(self.queue_depth_peak)),
            ("accesses_per_sec".into(), Json::F64(self.accesses_per_sec)),
            (
                "confidence".into(),
                Json::Arr(self.confidence.iter().map(|&c| Json::U64(c)).collect()),
            ),
        ])
    }

    fn from_json(value: &Json) -> Result<ShardTelemetry, String> {
        let field = |key: &str| -> Result<u64, String> {
            value
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("shard entry missing integer field {key:?}"))
        };
        let confidence = match value.get("confidence") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|v| v.as_u64().ok_or("confidence bins must be integers"))
                .collect::<Result<Vec<u64>, _>>()?,
            _ => return Err("shard entry missing confidence array".into()),
        };
        let telemetry = ShardTelemetry {
            shard: field("shard")?,
            tenants: field("tenants")?,
            processed: field("processed")?,
            hits: field("hits")?,
            misses: field("misses")?,
            bypassed: field("bypassed")?,
            queue_depth_peak: field("queue_depth_peak")?,
            accesses_per_sec: value
                .get("accesses_per_sec")
                .and_then(Json::as_f64)
                .ok_or("shard entry missing accesses_per_sec")?,
            confidence,
        };
        if telemetry.hits + telemetry.misses + telemetry.bypassed != telemetry.processed {
            return Err(format!(
                "shard {}: hits+misses+bypassed != processed",
                telemetry.shard
            ));
        }
        Ok(telemetry)
    }
}

/// One point-in-time snapshot of the whole serving fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetManifest {
    /// Seed the traffic model runs on.
    pub seed: u64,
    /// Rounds completed when the snapshot was taken.
    pub rounds: u64,
    /// Total tenants across the fleet.
    pub tenants: u64,
    /// Policy name the engines run (display form).
    pub policy: String,
    /// Per-shard telemetry, shard-index order.
    pub shards: Vec<ShardTelemetry>,
}

impl FleetManifest {
    /// Total accesses processed across shards.
    pub fn processed(&self) -> u64 {
        self.shards.iter().map(|s| s.processed).sum()
    }

    /// Aggregate fleet drain throughput: total accesses over total shard
    /// busy time. On a single-worker host (shards timesharing one core)
    /// this is exactly the sustained service rate; a deployment running
    /// shards concurrently sustains up to the *sum* of the per-shard
    /// rates instead.
    pub fn accesses_per_sec(&self) -> f64 {
        let busy_secs: f64 = self
            .shards
            .iter()
            .filter(|s| s.accesses_per_sec > 0.0)
            .map(|s| s.processed as f64 / s.accesses_per_sec)
            .sum();
        if busy_secs == 0.0 {
            0.0
        } else {
            self.processed() as f64 / busy_secs
        }
    }

    /// Renders the schema-versioned document.
    pub fn render(&self) -> String {
        let mut out = Json::Obj(vec![
            ("schema".into(), Json::Str(FLEET_SCHEMA.into())),
            ("seed".into(), Json::U64(self.seed)),
            ("rounds".into(), Json::U64(self.rounds)),
            ("tenants".into(), Json::U64(self.tenants)),
            ("policy".into(), Json::Str(self.policy.clone())),
            ("processed".into(), Json::U64(self.processed())),
            (
                "accesses_per_sec".into(),
                Json::F64(self.accesses_per_sec()),
            ),
            (
                "shards".into(),
                Json::Arr(self.shards.iter().map(ShardTelemetry::to_json).collect()),
            ),
        ])
        .render();
        out.push('\n');
        out
    }
}

/// Parses and validates a fleet manifest document: schema tag, required
/// fields, per-shard outcome arithmetic, and cross-checks of the
/// redundant totals. Returns the decoded manifest.
pub fn validate(text: &str) -> Result<FleetManifest, String> {
    let doc = Json::parse(text).map_err(|e| format!("fleet manifest is not JSON: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(FLEET_SCHEMA) => {}
        Some(other) => return Err(format!("unexpected schema {other:?}")),
        None => return Err("missing schema field".into()),
    }
    let int = |key: &str| -> Result<u64, String> {
        doc.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing integer field {key:?}"))
    };
    let shards = match doc.get("shards") {
        Some(Json::Arr(items)) if !items.is_empty() => items
            .iter()
            .map(ShardTelemetry::from_json)
            .collect::<Result<Vec<_>, _>>()?,
        Some(Json::Arr(_)) => return Err("fleet has no shards".into()),
        _ => return Err("missing shards array".into()),
    };
    for (i, s) in shards.iter().enumerate() {
        if s.shard != i as u64 {
            return Err(format!("shard entries out of order at index {i}"));
        }
    }
    let manifest = FleetManifest {
        seed: int("seed")?,
        rounds: int("rounds")?,
        tenants: int("tenants")?,
        policy: doc
            .get("policy")
            .and_then(Json::as_str)
            .ok_or("missing policy field")?
            .to_string(),
        shards,
    };
    if manifest.tenants != manifest.shards.iter().map(|s| s.tenants).sum::<u64>() {
        return Err("tenant counts do not sum to the fleet total".into());
    }
    if int("processed")? != manifest.processed() {
        return Err("processed total does not match the shard sum".into());
    }
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> FleetManifest {
        FleetManifest {
            seed: 42,
            rounds: 8,
            tenants: 3,
            policy: "MPPPB".into(),
            shards: vec![
                ShardTelemetry {
                    shard: 0,
                    tenants: 2,
                    processed: 100,
                    hits: 60,
                    misses: 30,
                    bypassed: 10,
                    queue_depth_peak: 7,
                    accesses_per_sec: 1.5e7,
                    confidence: vec![0; 16],
                },
                ShardTelemetry {
                    shard: 1,
                    tenants: 1,
                    processed: 50,
                    hits: 20,
                    misses: 30,
                    bypassed: 0,
                    queue_depth_peak: 3,
                    accesses_per_sec: 0.5e7,
                    confidence: vec![0; 16],
                },
            ],
        }
    }

    #[test]
    fn round_trips_through_render_and_validate() {
        let m = manifest();
        let parsed = validate(&m.render()).expect("valid");
        assert_eq!(parsed, m);
        assert_eq!(parsed.processed(), 150);
        // Aggregate drain rate = total work over total busy time:
        // 150 / (100/1.5e7 + 50/0.5e7) = 9e6.
        assert!((parsed.accesses_per_sec() - 9.0e6).abs() < 1.0);
        assert!((parsed.shards[0].hit_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(validate("not json").is_err());
        assert!(validate("{\"schema\":\"mrp-run-manifest-v1\"}").is_err());
        let mut wrong_sum = manifest();
        wrong_sum.shards[0].hits += 1;
        assert!(validate(&wrong_sum.render()).is_err());
        let mut no_shards = manifest();
        no_shards.shards.clear();
        assert!(validate(&no_shards.render()).is_err());
        let mut wrong_tenants = manifest();
        wrong_tenants.tenants = 9;
        assert!(validate(&wrong_tenants.render()).is_err());
    }
}

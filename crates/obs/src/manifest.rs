//! Schema-versioned JSONL run manifests.
//!
//! One manifest per driver invocation, written to
//! `<dir>/<bin>-<timestamp>-<seed>.jsonl`. The format is line-oriented
//! so manifests stream into `jq`/`grep` and append-merge across runs;
//! every line is one JSON object tagged with a `type`:
//!
//! | `type`    | payload |
//! |-----------|---------|
//! | `meta`    | schema version, binary, unix timestamp, seed, CLI args, `git describe`, thread count, replay flag |
//! | `cell`    | one experiment cell: `workload`, `policy`, and a `metrics` object (MPKI/IPC/cycles/…) |
//! | `scalar`  | one named summary value (geomean speedup, mean MPKI, …) |
//! | `phase`   | accumulated wall-clock of one named phase (`record`/`replay`/`simulate`/`report`) |
//! | `counter` | final value of one registry counter |
//! | `gauge`   | final value + peak of one registry gauge |
//!
//! The `meta` line is always first and carries
//! [`SCHEMA`] = `"mrp-run-manifest-v1"`; consumers must reject unknown
//! majors. [`validate`] enforces the shape (the `manifest_check` driver
//! and the round-trip tests are its callers).

use std::io;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::Json;
use crate::{phases_snapshot, registry_snapshot};

/// Current manifest schema identifier.
pub const SCHEMA: &str = "mrp-run-manifest-v1";

/// Builder/writer for one run's manifest.
#[derive(Debug)]
pub struct RunManifest {
    bin: String,
    seed: u64,
    dir: PathBuf,
    timestamp: u64,
    args: Vec<String>,
    git: String,
    meta_extra: Vec<(String, Json)>,
    cells: Vec<Json>,
    scalars: Vec<(String, f64)>,
}

impl RunManifest {
    /// Starts a manifest for driver `bin` at `seed`, writing into
    /// `dir` on [`finish`](Self::finish). Captures the process CLI
    /// args, `git describe --always --dirty` (best effort — `"unknown"`
    /// outside a git checkout), and the current unix timestamp.
    pub fn new(bin: &str, seed: u64, dir: impl Into<PathBuf>) -> Self {
        RunManifest {
            bin: bin.to_string(),
            seed,
            dir: dir.into(),
            timestamp: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            args: std::env::args().skip(1).collect(),
            git: git_describe(),
            meta_extra: Vec::new(),
            cells: Vec::new(),
            scalars: Vec::new(),
        }
    }

    /// Adds an extra field to the `meta` line (thread count, replay
    /// flag, driver-specific context).
    pub fn meta(&mut self, key: &str, value: Json) -> &mut Self {
        self.meta_extra.push((key.to_string(), value));
        self
    }

    /// Records one experiment cell: `workload` × `policy` with named
    /// numeric metrics (`ipc`, `mpki`, `cycles`, …).
    pub fn cell(&mut self, workload: &str, policy: &str, metrics: &[(&str, f64)]) -> &mut Self {
        self.cells.push(Json::Obj(vec![
            ("type".into(), Json::Str("cell".into())),
            ("workload".into(), Json::Str(workload.into())),
            ("policy".into(), Json::Str(policy.into())),
            (
                "metrics".into(),
                Json::Obj(
                    metrics
                        .iter()
                        .map(|(k, v)| (k.to_string(), Json::F64(*v)))
                        .collect(),
                ),
            ),
        ]));
        self
    }

    /// Records one named summary scalar (geomean speedup, mean MPKI…).
    pub fn scalar(&mut self, name: &str, value: f64) -> &mut Self {
        self.scalars.push((name.to_string(), value));
        self
    }

    /// Number of cells recorded so far.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// The file name this manifest will be written under:
    /// `<bin>-<timestamp>-<seed>.jsonl`.
    pub fn file_name(&self) -> String {
        format!("{}-{}-{}.jsonl", self.bin, self.timestamp, self.seed)
    }

    /// Renders the full manifest (meta, cells, scalars, then a snapshot
    /// of all phases and registry metrics) as JSONL text.
    pub fn render(&self) -> String {
        let mut meta = vec![
            ("type".to_string(), Json::Str("meta".into())),
            ("schema".to_string(), Json::Str(SCHEMA.into())),
            ("bin".to_string(), Json::Str(self.bin.clone())),
            ("timestamp_unix_s".to_string(), Json::U64(self.timestamp)),
            ("seed".to_string(), Json::U64(self.seed)),
            (
                "args".to_string(),
                Json::Arr(self.args.iter().map(|a| Json::Str(a.clone())).collect()),
            ),
            ("git".to_string(), Json::Str(self.git.clone())),
        ];
        meta.extend(self.meta_extra.iter().cloned());

        let mut lines = vec![Json::Obj(meta).render()];
        lines.extend(self.cells.iter().map(Json::render));
        for (name, value) in &self.scalars {
            lines.push(
                Json::Obj(vec![
                    ("type".into(), Json::Str("scalar".into())),
                    ("name".into(), Json::Str(name.clone())),
                    ("value".into(), Json::F64(*value)),
                ])
                .render(),
            );
        }
        for (name, stat) in phases_snapshot() {
            lines.push(
                Json::Obj(vec![
                    ("type".into(), Json::Str("phase".into())),
                    ("name".into(), Json::Str(name)),
                    ("wall_s".into(), Json::F64(stat.total_ns as f64 / 1e9)),
                    ("count".into(), Json::U64(stat.count)),
                ])
                .render(),
            );
        }
        for (name, value, peak) in registry_snapshot() {
            let mut fields = vec![
                (
                    "type".to_string(),
                    Json::Str(if peak.is_some() { "gauge" } else { "counter" }.into()),
                ),
                ("name".to_string(), Json::Str(name)),
                ("value".to_string(), Json::I64(value)),
            ];
            if let Some(peak) = peak {
                fields.push(("peak".to_string(), Json::I64(peak)));
            }
            lines.push(Json::Obj(fields).render());
        }
        let mut out = lines.join("\n");
        out.push('\n');
        out
    }

    /// Writes the manifest, creating the directory if needed, and
    /// returns the written path.
    pub fn finish(&self) -> io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.dir.join(self.file_name());
        std::fs::write(&path, self.render())?;
        Ok(path)
    }
}

fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Shape summary of a validated manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestSummary {
    /// Schema identifier from the meta line.
    pub schema: String,
    /// Driver binary name from the meta line.
    pub bin: String,
    /// Number of `cell` lines.
    pub cells: usize,
    /// Number of `scalar` lines.
    pub scalars: usize,
    /// Number of `phase` lines.
    pub phases: usize,
    /// Number of `counter` + `gauge` lines.
    pub counters: usize,
}

/// Parses and schema-checks a manifest document.
///
/// Enforces: non-empty; first line is a `meta` object carrying the
/// known [`SCHEMA`]; every line is a JSON object with a known `type`;
/// cells carry `workload`, `policy`, and an object `metrics`; phases,
/// counters, gauges, and scalars carry `name` plus their value fields.
pub fn validate(text: &str) -> Result<ManifestSummary, String> {
    let mut lines = text.lines().enumerate();
    let (_, first) = lines.next().ok_or("empty manifest")?;
    let meta = Json::parse(first).map_err(|e| format!("line 1: {e}"))?;
    if meta.get("type").and_then(Json::as_str) != Some("meta") {
        return Err("line 1 is not a meta record".into());
    }
    let schema = meta
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("meta line missing schema")?;
    if schema != SCHEMA {
        return Err(format!("unknown schema {schema:?} (expected {SCHEMA:?})"));
    }
    let bin = meta
        .get("bin")
        .and_then(Json::as_str)
        .ok_or("meta line missing bin")?;
    for key in ["timestamp_unix_s", "seed"] {
        if meta.get(key).and_then(Json::as_u64).is_none() {
            return Err(format!("meta line missing integer {key}"));
        }
    }

    let mut summary = ManifestSummary {
        schema: schema.to_string(),
        bin: bin.to_string(),
        cells: 0,
        scalars: 0,
        phases: 0,
        counters: 0,
    };
    for (i, line) in lines {
        let n = i + 1;
        let record = Json::parse(line).map_err(|e| format!("line {n}: {e}"))?;
        let kind = record
            .get("type")
            .and_then(Json::as_str)
            .ok_or(format!("line {n}: missing type"))?;
        let require = |key: &str| -> Result<(), String> {
            record
                .get(key)
                .map(|_| ())
                .ok_or(format!("line {n}: {kind} record missing {key}"))
        };
        match kind {
            "cell" => {
                require("workload")?;
                require("policy")?;
                match record.get("metrics") {
                    Some(Json::Obj(_)) => {}
                    _ => return Err(format!("line {n}: cell metrics must be an object")),
                }
                summary.cells += 1;
            }
            "scalar" => {
                require("name")?;
                require("value")?;
                summary.scalars += 1;
            }
            "phase" => {
                require("name")?;
                require("wall_s")?;
                require("count")?;
                summary.phases += 1;
            }
            "counter" | "gauge" => {
                require("name")?;
                require("value")?;
                summary.counters += 1;
            }
            "meta" => return Err(format!("line {n}: duplicate meta record")),
            other => return Err(format!("line {n}: unknown record type {other:?}")),
        }
    }
    Ok(summary)
}

/// Validates every `*.jsonl` manifest under `dir`; returns
/// `(file name, summary)` pairs sorted by name.
pub fn validate_dir(dir: &Path) -> Result<Vec<(String, ManifestSummary)>, String> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "jsonl") {
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            let summary = validate(&text).map_err(|e| format!("{}: {e}", path.display()))?;
            out.push((entry.file_name().to_string_lossy().into_owned(), summary));
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> RunManifest {
        let mut m = RunManifest::new("test_bin", 7, std::env::temp_dir());
        m.meta("threads", Json::U64(4));
        m.cell("zipf.hot", "lru", &[("ipc", 1.25), ("mpki", 3.5)]);
        m.cell("loop.edge", "mpppb", &[("ipc", 1.5), ("mpki", 2.0)]);
        m.scalar("geomean_speedup.mpppb", 1.09);
        m
    }

    #[test]
    fn render_validates_and_counts() {
        let text = minimal().render();
        let summary = validate(&text).expect("valid manifest");
        assert_eq!(summary.schema, SCHEMA);
        assert_eq!(summary.bin, "test_bin");
        assert_eq!(summary.cells, 2);
        assert_eq!(summary.scalars, 1);
    }

    #[test]
    fn cell_values_round_trip_exactly() {
        let text = minimal().render();
        let cell = text
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .find(|r| {
                r.get("type").and_then(Json::as_str) == Some("cell")
                    && r.get("workload").and_then(Json::as_str) == Some("zipf.hot")
            })
            .expect("cell line");
        let metrics = cell.get("metrics").expect("metrics");
        assert_eq!(metrics.get("ipc").and_then(Json::as_f64), Some(1.25));
        assert_eq!(metrics.get("mpki").and_then(Json::as_f64), Some(3.5));
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate("").is_err());
        assert!(validate("{\"type\":\"cell\"}").is_err(), "no meta first");
        let mut text = minimal().render();
        text.push_str("{\"type\":\"martian\"}\n");
        assert!(validate(&text).is_err(), "unknown record type");
        let missing = minimal().render().replace("\"workload\"", "\"wrkld\"");
        assert!(validate(&missing).is_err(), "cell without workload");
    }

    #[test]
    fn file_name_is_bin_timestamp_seed() {
        let m = minimal();
        let name = m.file_name();
        assert!(name.starts_with("test_bin-"));
        assert!(name.ends_with("-7.jsonl"));
    }

    #[test]
    fn finish_writes_a_parseable_file() {
        let dir = std::env::temp_dir().join(format!("mrp-obs-test-{}", std::process::id()));
        let mut m = RunManifest::new("finish_test", 3, &dir);
        m.cell("w", "p", &[("mpki", 1.0)]);
        let path = m.finish().expect("write manifest");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(validate(&text).expect("valid").cells, 1);
        let listed = validate_dir(&dir).expect("scan dir");
        assert!(listed.iter().any(|(f, _)| f == &m.file_name()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Bench-scale Figures 1/8: ROC accuracy measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use mrp_bench::BENCH_WORKLOADS;
use mrp_experiments::roc;
use mrp_experiments::runner::StParams;

fn bench(c: &mut Criterion) {
    let params = StParams {
        warmup: 20_000,
        measure: 100_000,
        seed: 1,
    };
    let mut group = c.benchmark_group("fig_roc");
    group.sample_size(10);
    group.bench_function("roc_three_predictors", |b| {
        b.iter(|| {
            let curves = roc::run(params, BENCH_WORKLOADS);
            criterion::black_box(curves[2].tpr_at_fpr(0.28))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Bench-scale Figure 9: uniform associativity sweep (two points).

use criterion::{criterion_group, criterion_main, Criterion};
use mrp_experiments::assoc_sweep;
use mrp_experiments::runner::MpParams;

fn bench(c: &mut Criterion) {
    let params = MpParams {
        warmup: 15_000,
        measure: 60_000,
    };
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("assoc_sweep_2pts_1mix", |b| {
        b.iter(|| {
            let sweep = assoc_sweep::run(params, 1, 9, 5);
            criterion::black_box(sweep.original)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Bench-scale Figure 4/5: the 4-core multi-programmed comparison
//! (weighted speedup and MPKI share one run matrix).

use criterion::{criterion_group, criterion_main, Criterion};
use mrp_bench::BENCH_MIXES;
use mrp_experiments::multi;
use mrp_experiments::runner::MpParams;

fn bench(c: &mut Criterion) {
    let params = MpParams {
        warmup: 20_000,
        measure: 80_000,
    };
    let mut group = c.benchmark_group("fig4_fig5");
    group.sample_size(10);
    group.bench_function("mp_comparison_1mix", |b| {
        b.iter(|| {
            let matrix = multi::run(params, BENCH_MIXES, 1, 42);
            criterion::black_box(matrix.geomean_speedup("MPPPB"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

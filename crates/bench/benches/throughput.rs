//! Simulator throughput benches: instructions simulated per second for
//! the hierarchy under each policy class, and the raw predictor hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mrp_cache::HierarchyConfig;
use mrp_cpu::SingleCoreSim;
use mrp_experiments::PolicyKind;
use mrp_trace::workloads;

fn bench_hierarchy(c: &mut Criterion) {
    const INSTRUCTIONS: u64 = 200_000;
    let mut group = c.benchmark_group("hierarchy_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(INSTRUCTIONS));
    for kind in [PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::MpppbSingle] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let config = HierarchyConfig::single_thread();
                    let mut sim = SingleCoreSim::new(
                        config,
                        kind.build(&config.llc),
                        workloads::suite()[10].trace(1),
                    );
                    criterion::black_box(sim.run(0, INSTRUCTIONS).mpki)
                })
            },
        );
    }
    group.finish();
}

fn bench_predictor_indexing(c: &mut Criterion) {
    use mrp_core::context::FeatureContext;
    use mrp_core::{feature_sets, FeaturePlan, MultiperspectivePredictor};
    let features = feature_sets::table_1a();
    let history: Vec<u64> = (0..18).map(|i| 0x40_0000 + i * 1357).collect();
    let mut group = c.benchmark_group("predictor_hot_path");
    group.throughput(Throughput::Elements(1));
    // The predictor's index path: one access through the compiled feature
    // plan (what `compute_indices` runs per LLC access).
    group.bench_function("index_16_features", |b| {
        let plan = FeaturePlan::new(&features);
        let mut out = Vec::with_capacity(16);
        let mut pc = 0x40_0000u64;
        b.iter(|| {
            pc = pc.wrapping_add(4);
            let ctx = FeatureContext {
                pc,
                address: pc << 3,
                pc_history: &history,
                is_mru: pc.is_multiple_of(2),
                is_insert: pc.is_multiple_of(3),
                last_miss: pc.is_multiple_of(5),
            };
            plan.compute_offsets(&ctx, &mut out);
            criterion::black_box(out.len())
        })
    });
    // The full predict→train loop: index computation, confidence
    // gather-sum, and sampler-driven weight training on sampled sets.
    group.bench_function("confidence_and_train", |b| {
        const LLC_SETS: u32 = 2048;
        let mut predictor =
            MultiperspectivePredictor::new(feature_sets::table_1a(), LLC_SETS, 64, 18);
        let mut indices = Vec::with_capacity(16);
        let mut pc = 0x40_0000u64;
        let mut block = 0u64;
        b.iter(|| {
            pc = pc.wrapping_add(4);
            block = block.wrapping_add(0x61c8_8646_80b5_83eb);
            let ctx = FeatureContext {
                pc,
                address: block << 6,
                pc_history: &history,
                is_mru: pc.is_multiple_of(2),
                is_insert: pc.is_multiple_of(3),
                last_miss: pc.is_multiple_of(5),
            };
            predictor.compute_indices(&ctx, &mut indices);
            let confidence = predictor.confidence(&indices);
            predictor.train(block as u32 % LLC_SETS, block, &indices, confidence);
            criterion::black_box(confidence)
        })
    });
    group.finish();
}

fn bench_pool_scaling(c: &mut Criterion) {
    // Scaling of the mrp-runtime work queue on a realistic job shape: a
    // batch of small independent LRU simulations, as the experiment
    // drivers fan out. On an N-core machine the 2/4-thread points should
    // approach 1/2 and 1/4 of the 1-thread wall clock (modulo N).
    const JOBS: usize = 8;
    const INSTRUCTIONS: u64 = 50_000;
    let mut group = c.benchmark_group("pool_scaling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(JOBS as u64 * INSTRUCTIONS));
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mpkis = mrp_runtime::map_indexed_with(JOBS, threads, |job| {
                        let config = HierarchyConfig::single_thread();
                        let mut sim = SingleCoreSim::new(
                            config,
                            PolicyKind::Lru.build(&config.llc),
                            workloads::suite()[job % 4].trace(1),
                        );
                        sim.run(0, INSTRUCTIONS).mpki
                    });
                    criterion::black_box(mpkis)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hierarchy,
    bench_predictor_indexing,
    bench_pool_scaling
);
criterion_main!(benches);

//! Bench-scale Table 3: per-workload feature contributions.

use criterion::{criterion_group, criterion_main, Criterion};
use mrp_bench::BENCH_WORKLOADS;
use mrp_experiments::feature_table;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("contrib_2wl", |b| {
        b.iter(|| {
            let rows = feature_table::run(BENCH_WORKLOADS, 100_000, 99);
            criterion::black_box(rows.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

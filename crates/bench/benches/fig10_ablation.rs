//! Bench-scale Figure 10: leave-one-feature-out ablation (two features).

use criterion::{criterion_group, criterion_main, Criterion};
use mrp_experiments::ablation;
use mrp_experiments::runner::MpParams;

fn bench(c: &mut Criterion) {
    let params = MpParams {
        warmup: 10_000,
        measure: 50_000,
    };
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("ablate_2_features_1mix", |b| {
        b.iter(|| {
            let result = ablation::run(params, 1, 2, 5);
            criterion::black_box(result.original)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

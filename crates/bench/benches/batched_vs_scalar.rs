//! Hot-path kernel benches: the per-feature compiled path against the
//! lane-SoA kernels at every available SIMD level, the batched front-end
//! at widths 1/4/8, the gather-sum confidence kernel pair, and the
//! batched saturating weight-update (train-apply) kernel across event
//! counts straddling the vector threshold.
//!
//! Companion to `bench_snapshot`'s `batched_hot_path` section (which
//! records the same comparisons as committed JSON); this bench gives the
//! interactive per-width view. All kernels compute identical offsets —
//! `mrp-verify`'s kernel-identity pass proves it — so every line here is
//! pure throughput, not a behavioral variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mrp_core::context::FeatureContext;
use mrp_core::plan::MAX_BATCH;
use mrp_core::simd::{self, ApplyScratch, GATHER_PAD};
use mrp_core::tables::{WeightTables, WEIGHT_MAX, WEIGHT_MIN};
use mrp_core::{feature_sets, FeaturePlan};

/// A rolling window of deterministic contexts sharing one history.
fn contexts(history: &[u64], n: usize) -> Vec<FeatureContext<'_>> {
    (0..n as u64)
        .map(|i| {
            let pc = 0x40_0000 + i * 4;
            FeatureContext {
                pc,
                address: pc.wrapping_mul(0x9e37_79b9_7f4a_7c15),
                pc_history: history,
                is_mru: i % 2 == 0,
                is_insert: i % 3 == 0,
                last_miss: i % 5 == 0,
            }
        })
        .collect()
}

fn bench_index_kernels(c: &mut Criterion) {
    let features = feature_sets::table_1a();
    let plan = FeaturePlan::new(&features);
    let history: Vec<u64> = (0..18).map(|i| 0x40_0000 + i * 1357).collect();
    let ctxs = contexts(&history, MAX_BATCH);

    let mut group = c.benchmark_group("index_kernels");
    group.throughput(Throughput::Elements(1));
    group.bench_function("compiled", |b| {
        let mut out = Vec::with_capacity(16);
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % ctxs.len();
            plan.compute_offsets_compiled(&ctxs[i], &mut out);
            criterion::black_box(out.len())
        })
    });
    for &level in simd::available_levels() {
        group.bench_with_input(
            BenchmarkId::new("lane", level.name()),
            &level,
            |b, &level| {
                let mut out = Vec::with_capacity(16);
                let mut i = 0;
                b.iter(|| {
                    i = (i + 1) % ctxs.len();
                    plan.compute_offsets_with(level, &ctxs[i], &mut out);
                    criterion::black_box(out.len())
                })
            },
        );
    }
    group.finish();
}

fn bench_batch_widths(c: &mut Criterion) {
    let features = feature_sets::table_1a();
    let plan = FeaturePlan::new(&features);
    let history: Vec<u64> = (0..18).map(|i| 0x40_0000 + i * 1357).collect();
    let ctxs = contexts(&history, MAX_BATCH);

    // Throughput is per access, so widths compare directly: a wider batch
    // wins when its per-element time drops below the width-1 line.
    let mut group = c.benchmark_group("batched_offsets");
    for width in [1usize, MAX_BATCH / 2, MAX_BATCH] {
        group.throughput(Throughput::Elements(width as u64));
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &width| {
            let mut out = Vec::with_capacity(width * 16);
            b.iter(|| {
                plan.compute_offsets_batch(&ctxs[..width], &mut out);
                criterion::black_box(out.len())
            })
        });
    }
    group.finish();
}

fn bench_gather_sum(c: &mut Criterion) {
    let features = feature_sets::table_1a();
    let plan = FeaturePlan::new(&features);
    let mut tables = WeightTables::new(&features);
    // Spread the weights so the sum is not trivially zero.
    for offset in 0..tables.arena_len() {
        for _ in 0..(offset % 5) {
            if offset % 2 == 0 {
                tables.increment_at(offset as u16);
            } else {
                tables.decrement_at(offset as u16);
            }
        }
    }
    let history: Vec<u64> = (0..18).map(|i| 0x40_0000 + i * 1357).collect();
    let ctxs = contexts(&history, MAX_BATCH);
    let mut offsets = Vec::with_capacity(16);
    plan.compute_offsets(&ctxs[0], &mut offsets);

    let mut group = c.benchmark_group("gather_sum");
    group.throughput(Throughput::Elements(1));
    for &level in simd::available_levels() {
        group.bench_with_input(
            BenchmarkId::from_parameter(level.name()),
            &level,
            |b, &level| b.iter(|| criterion::black_box(tables.confidence_with(level, &offsets))),
        );
    }
    group.finish();
}

/// A deterministic packed-event buffer over `arena` offsets: a rolling
/// multiplicative walk with mixed signs, revisiting offsets so the
/// conflict-coalescing path sees duplicates the way sampler bursts
/// produce them.
fn train_events(arena: usize, count: usize) -> Vec<u32> {
    (0..count as u32)
        .map(|i| {
            let offset = (i.wrapping_mul(2654435761) >> 8) as usize % arena;
            ((offset as u32) << 1) | ((i / 7) & 1)
        })
        .collect()
}

fn bench_train_apply(c: &mut Criterion) {
    let features = feature_sets::table_1a();
    let arena = WeightTables::new(&features).arena_len();
    let mut weights = vec![0i8; arena + GATHER_PAD];
    let mut scratch = ApplyScratch::default();

    let mut group = c.benchmark_group("train_apply");
    // 8 events stay on the shared scalar fold; 256 and 4096 take the
    // sort-coalesce vector path (one chunk exactly at 4096).
    for count in [8usize, 256, 4096] {
        let events = train_events(arena, count);
        group.throughput(Throughput::Elements(count as u64));
        for &level in simd::available_levels() {
            group.bench_with_input(
                BenchmarkId::new(format!("events_{count}"), level.name()),
                &level,
                |b, &level| {
                    b.iter(|| {
                        simd::apply_events_i8(
                            &mut weights,
                            &events,
                            WEIGHT_MIN,
                            WEIGHT_MAX,
                            level,
                            &mut scratch,
                        );
                        criterion::black_box(weights[0])
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_index_kernels,
    bench_batch_widths,
    bench_gather_sum,
    bench_train_apply
);
criterion_main!(benches);

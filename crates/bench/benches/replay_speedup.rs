//! Record-once/replay-many vs full simulation on a 13-policy sweep.
//!
//! The workload of every single-thread figure driver: one workload, all
//! thirteen registered policies. `full_sim_13_policies` re-simulates the
//! trace generator, L1, L2, and prefetcher per policy;
//! `record_and_replay_13_policies` records the LLC-bound stream once and
//! replays it into each policy (including the recording cost each
//! iteration, as a cold driver pays it). Both produce bit-identical
//! results; the ratio is the headline win of the replay layer.

use criterion::{criterion_group, criterion_main, Criterion};
use mrp_bench::{BENCH_MEASURE, BENCH_WARMUP};
use mrp_cache::replay::LlcRecording;
use mrp_cache::{Cache, HierarchyConfig, ReplacementPolicy};
use mrp_cpu::{replay_single, SingleCoreSim};
use mrp_experiments::PolicyKind;
use mrp_trace::workloads;

const POLICY_NAMES: [&str; 12] = [
    "lru",
    "random",
    "plru",
    "srrip",
    "drrip",
    "mdpp",
    "ship",
    "sdbp",
    "perceptron",
    "mpppb",
    "mpppb-srrip",
    "mpppb-adaptive",
];

/// Fresh instances of all 13 policies (the 12 named kinds plus Hawkeye).
fn all_policies(config: &HierarchyConfig) -> Vec<Box<dyn ReplacementPolicy + Send>> {
    let mut out: Vec<Box<dyn ReplacementPolicy + Send>> = POLICY_NAMES
        .iter()
        .map(|n| {
            PolicyKind::from_name(n)
                .expect("known policy")
                .build(&config.llc)
        })
        .collect();
    out.push(PolicyKind::hawkeye(&config.llc));
    out
}

fn bench(c: &mut Criterion) {
    let config = HierarchyConfig::single_thread();
    let workload = &workloads::suite()[10];
    let mut group = c.benchmark_group("replay_speedup");
    group.sample_size(10);
    group.bench_function("full_sim_13_policies", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for policy in all_policies(&config) {
                let mut sim = SingleCoreSim::new(config, policy, workload.trace(1));
                total += sim.run(BENCH_WARMUP, BENCH_MEASURE).mpki;
            }
            criterion::black_box(total)
        })
    });
    group.bench_function("record_and_replay_13_policies", |b| {
        b.iter(|| {
            let recording = LlcRecording::record(
                workload.name(),
                workload.trace(1),
                &config,
                BENCH_WARMUP,
                BENCH_MEASURE,
            );
            let mut total = 0.0;
            for policy in all_policies(&config) {
                let mut cache = Cache::new(config.llc, policy);
                total += replay_single(&recording, &mut cache, &config.latencies).mpki;
            }
            criterion::black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Bench-scale Figure 3: random feature search + hill climbing.

use criterion::{criterion_group, criterion_main, Criterion};
use mrp_experiments::search_curve::{self, SearchParams};

fn bench(c: &mut Criterion) {
    let params = SearchParams {
        candidates: 3,
        workload_count: 2,
        instructions: 100_000,
        patience: 2,
        max_moves: 3,
        seed: 17,
    };
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("search_3_candidates", |b| {
        b.iter(|| {
            let curve = search_curve::run(params);
            criterion::black_box(curve.hillclimbed_mpki)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

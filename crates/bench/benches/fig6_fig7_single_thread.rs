//! Bench-scale Figure 6/7: the single-thread policy comparison (speedup
//! and MPKI share one run matrix).

use criterion::{criterion_group, criterion_main, Criterion};
use mrp_bench::{BENCH_MEASURE, BENCH_WARMUP, BENCH_WORKLOADS};
use mrp_experiments::runner::StParams;
use mrp_experiments::single_thread;

fn bench(c: &mut Criterion) {
    let params = StParams {
        warmup: BENCH_WARMUP,
        measure: BENCH_MEASURE,
        seed: 1,
    };
    let mut group = c.benchmark_group("fig6_fig7");
    group.sample_size(10);
    group.bench_function("st_comparison_2wl", |b| {
        b.iter(|| {
            let matrix = single_thread::run(params, BENCH_WORKLOADS, true);
            criterion::black_box(matrix.geomean_speedup("MPPPB"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

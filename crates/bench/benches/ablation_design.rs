//! Ablation benches for the design choices called out in DESIGN.md:
//! sampler set count, weight width, and training threshold. Each variant
//! runs the same small workload; criterion reports the runtime, and each
//! body returns the MPKI so `--verbose` output can be eyeballed for the
//! quality trend.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrp_cache::{Cache, CacheConfig};
use mrp_core::feature_sets;
use mrp_core::mpppb::{Mpppb, MpppbConfig};
use mrp_core::tables::WeightTables;
use mrp_trace::workloads;

/// Replays a fixed workload prefix against an MPPPB-managed LLC and
/// returns the demand-miss count.
fn run_with_config(config: MpppbConfig, llc: &CacheConfig) -> u64 {
    let workload = &workloads::suite()[14]; // scanhot.protect
    let mut cache = Cache::new(*llc, Box::new(Mpppb::new(config, llc)));
    for access in workload.trace(1).take(60_000) {
        let _ = cache.access(&access, false);
    }
    cache.stats().demand_misses
}

fn bench_sampler_sets(c: &mut Criterion) {
    let llc = CacheConfig::llc_single();
    let mut group = c.benchmark_group("ablation_sampler_sets");
    group.sample_size(10);
    for sets in [16u32, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(sets), &sets, |b, &sets| {
            b.iter(|| {
                let mut config = MpppbConfig::single_thread(&llc);
                config.sampler_sets = sets;
                criterion::black_box(run_with_config(config, &llc))
            })
        });
    }
    group.finish();
}

fn bench_training_threshold(c: &mut Criterion) {
    let llc = CacheConfig::llc_single();
    let mut group = c.benchmark_group("ablation_theta");
    group.sample_size(10);
    for theta in [0i32, 35, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(theta), &theta, |b, &theta| {
            b.iter(|| {
                let mut config = MpppbConfig::single_thread(&llc);
                config.training_threshold = theta;
                criterion::black_box(run_with_config(config, &llc))
            })
        });
    }
    group.finish();
}

fn bench_weight_width(c: &mut Criterion) {
    // Weight-width ablation exercises the table structure directly: the
    // paper chose 6-bit weights as the accuracy/area sweet spot (§3.4).
    let features = feature_sets::table_1a();
    let mut group = c.benchmark_group("ablation_weight_bits");
    group.sample_size(10);
    for bits in [4u32, 6, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            b.iter(|| {
                let mut tables = WeightTables::with_weight_bits(&features, bits);
                for i in 0..5_000u16 {
                    let index = i % 2;
                    tables.increment(2, index);
                    if i % 3 == 0 {
                        tables.decrement(2, index);
                    }
                }
                criterion::black_box(tables.weight(2, 0))
            })
        });
    }
    group.finish();
}

fn bench_raw_vs_adaptive(c: &mut Criterion) {
    use mrp_core::AdaptiveMpppb;
    let llc = CacheConfig::llc_single();
    let mut group = c.benchmark_group("ablation_adaptive_guard");
    group.sample_size(10);
    group.bench_function("raw_mpppb", |b| {
        b.iter(|| {
            let config = MpppbConfig::single_thread(&llc);
            criterion::black_box(run_with_config(config, &llc))
        })
    });
    group.bench_function("adaptive_mpppb", |b| {
        b.iter(|| {
            let workload = &workloads::suite()[14];
            let config = MpppbConfig::single_thread(&llc);
            let mut cache = Cache::new(llc, Box::new(AdaptiveMpppb::new(config, &llc)));
            for access in workload.trace(1).take(60_000) {
                let _ = cache.access(&access, false);
            }
            criterion::black_box(cache.stats().demand_misses)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sampler_sets,
    bench_training_threshold,
    bench_weight_width,
    bench_raw_vs_adaptive
);
criterion_main!(benches);

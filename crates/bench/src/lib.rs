//! Shared scale constants for the criterion benches.
//!
//! Criterion runs each bench body repeatedly, so every experiment here is
//! a reduced configuration of the corresponding `mrp-experiments` binary:
//! same code path, much smaller instruction budgets. The binaries are the
//! tool for regenerating the paper's numbers; the benches keep every
//! experiment continuously exercised and timed.

/// Warmup instructions for bench-scale single-thread runs.
pub const BENCH_WARMUP: u64 = 20_000;

/// Measured instructions for bench-scale single-thread runs.
pub const BENCH_MEASURE: u64 = 100_000;

/// Mixes for bench-scale multi-programmed runs.
pub const BENCH_MIXES: usize = 1;

/// Workloads sampled in bench-scale suite sweeps.
pub const BENCH_WORKLOADS: usize = 2;

//! The named benchmark suite.
//!
//! Thirty-three deterministic synthetic workloads standing in for the
//! paper's 29 SPEC CPU 2006 benchmarks + 3 CloudSuite workloads + mlpack-cf
//! (see `DESIGN.md` for the substitution argument). Footprints are sized
//! relative to the paper's 2MB single-thread LLC (32Ki blocks of 64B) so the
//! suite spans cache-resident, marginal, and thrashing regimes.

use std::fmt;

use crate::generators::{
    AccessPattern, BTreeProbe, FieldAccess, GaussianWalk, GraphBfs, HashBuild, KeyValue,
    LoopPattern, Merge, Phased, PointerChase, ScanHot, SparseMatrix, StackPattern, Stream,
    TiledMatmul, Zipf,
};
use crate::record::MemoryAccess;

/// Blocks in 1 MiB.
const MB: u64 = (1 << 20) / 64;

/// Identifier of a workload in the suite (index into [`suite`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkloadId(pub usize);

impl fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{:02}", self.0)
    }
}

type BuildFn = fn(u64) -> Box<dyn AccessPattern + Send>;

/// A named benchmark: a deterministic access-pattern constructor plus
/// metadata.
#[derive(Clone)]
pub struct Workload {
    id: WorkloadId,
    name: &'static str,
    description: &'static str,
    build: BuildFn,
}

impl fmt::Debug for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workload")
            .field("id", &self.id)
            .field("name", &self.name)
            .finish()
    }
}

impl Workload {
    /// The workload's position in the suite.
    pub fn id(&self) -> WorkloadId {
        self.id
    }

    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description of the modeled behavior.
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// Builds the underlying access pattern for `seed`.
    pub fn pattern(&self, seed: u64) -> Box<dyn AccessPattern + Send> {
        (self.build)(seed)
    }

    /// Builds an infinite access iterator for `seed`.
    pub fn trace(&self, seed: u64) -> Trace {
        Trace {
            pattern: self.pattern(seed),
        }
    }
}

/// Infinite iterator over a workload's accesses.
pub struct Trace {
    pattern: Box<dyn AccessPattern + Send>,
}

impl Trace {
    /// Appends the next `n` accesses to `out` through the pattern's
    /// batched [`AccessPattern::fill`] — one virtual dispatch per batch
    /// rather than per access.
    pub fn fill(&mut self, n: usize, out: &mut Vec<MemoryAccess>) {
        self.pattern.fill(n, out);
    }
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Trace { .. }")
    }
}

impl Iterator for Trace {
    type Item = MemoryAccess;

    fn next(&mut self) -> Option<MemoryAccess> {
        Some(self.pattern.next_access())
    }
}

macro_rules! workload {
    ($id:expr, $name:literal, $desc:literal, $build:expr) => {
        Workload {
            id: WorkloadId($id),
            name: $name,
            description: $desc,
            build: $build,
        }
    };
}

/// Returns the full 33-workload suite.
///
/// The suite is a constant: `suite()[i].id() == WorkloadId(i)`.
pub fn suite() -> Vec<Workload> {
    let list: Vec<Workload> = vec![
        workload!(
            0,
            "stream.far",
            "sequential sweep over 64MB, dead-on-arrival blocks",
            |s| { Box::new(Stream::new(0x1000_0000, 64 * MB, 1, 0.05, s)) }
        ),
        workload!(
            1,
            "stream.strided",
            "4-block strided sweep over 32MB",
            |s| { Box::new(Stream::new(0x1000_0000, 32 * MB, 4, 0.0, s)) }
        ),
        workload!(
            2,
            "stream.rw",
            "read-write sweep over 16MB (50% stores)",
            |s| { Box::new(Stream::new(0x1000_0000, 16 * MB, 1, 0.5, s)) }
        ),
        workload!(3, "loop.fit", "1MB loop, fits a 2MB LLC", |_| {
            Box::new(LoopPattern::new(0x2000_0000, MB, 2))
        }),
        workload!(
            4,
            "loop.edge",
            "2.5MB permuted loop, just over a 2MB LLC (LRU-pathological)",
            |s| { Box::new(LoopPattern::new_permuted(0x2000_0000, 5 * MB / 2, 1, s)) }
        ),
        workload!(
            5,
            "loop.4m",
            "4MB permuted loop, 2x the single-thread LLC",
            |s| { Box::new(LoopPattern::new_permuted(0x2000_0000, 4 * MB, 1, s)) }
        ),
        workload!(
            6,
            "loop.12m",
            "12MB permuted loop, thrashes even the 8MB shared LLC",
            |s| { Box::new(LoopPattern::new_permuted(0x2000_0000, 12 * MB, 1, s)) }
        ),
        workload!(
            7,
            "chase.fit",
            "pointer chase over 512KB, cache-resident",
            |s| { Box::new(PointerChase::new(0x3000_0000, MB / 2, s)) }
        ),
        workload!(8, "chase.2m", "pointer chase over 2MB, marginal", |s| {
            Box::new(PointerChase::new(0x3000_0000, 2 * MB, s))
        }),
        workload!(
            9,
            "chase.16m",
            "pointer chase over 16MB, mcf-like misses",
            |s| { Box::new(PointerChase::new(0x3000_0000, 16 * MB, s)) }
        ),
        workload!(
            10,
            "zipf.hot",
            "Zipf(1.2) popularity over 16MB, small hot set",
            |s| { Box::new(Zipf::new(0x4000_0000, 16 * MB, 1.2, s)) }
        ),
        workload!(
            11,
            "zipf.flat",
            "Zipf(0.6) popularity over 8MB, diffuse reuse",
            |s| { Box::new(Zipf::new(0x4000_0000, 8 * MB, 0.6, s)) }
        ),
        workload!(
            12,
            "walk.tight",
            "Gaussian walk, sigma 8 blocks over 4MB",
            |s| { Box::new(GaussianWalk::new(0x5000_0000, 4 * MB, 8.0, s)) }
        ),
        workload!(
            13,
            "walk.wide",
            "Gaussian walk, sigma 512 blocks over 32MB",
            |s| { Box::new(GaussianWalk::new(0x5000_0000, 32 * MB, 512.0, s)) }
        ),
        workload!(
            14,
            "scanhot.protect",
            "50% hits to 1.25MB hot set + 32MB scan (LRU thrashes, bypass protects)",
            |s| { Box::new(ScanHot::new(0x6000_0000, 5 * MB / 4, 32 * MB, 0.5, s)) }
        ),
        workload!(
            15,
            "scanhot.pressure",
            "30% hits to 1.5MB hot set + 64MB scan",
            |s| { Box::new(ScanHot::new(0x6000_0000, 3 * MB / 2, 64 * MB, 0.3, s)) }
        ),
        workload!(
            16,
            "fields.gcc",
            "field dereferencing over 64K 256B objects (offset-feature rich)",
            |s| {
                Box::new(FieldAccess::new(
                    0x7000_0000,
                    1 << 16,
                    256,
                    vec![0, 8, 24, 64, 80, 136],
                    0.9,
                    s,
                ))
            }
        ),
        workload!(
            17,
            "fields.big",
            "field access over 512K 512B objects, low skew",
            |s| {
                Box::new(FieldAccess::new(
                    0x7000_0000,
                    1 << 19,
                    512,
                    vec![0, 16, 72, 256, 264],
                    0.5,
                    s,
                ))
            }
        ),
        workload!(
            18,
            "kv.server",
            "memcached-like: Zipf(1.1) keys, short chains, 4-block values",
            |s| { Box::new(KeyValue::new(0x8000_0000, 1 << 15, 1 << 15, 4, 1.1, s)) }
        ),
        workload!(
            19,
            "kv.uniform",
            "key-value with uniform keys (no hot set)",
            |s| { Box::new(KeyValue::new(0x8000_0000, 1 << 16, 1 << 16, 2, 0.0, s)) }
        ),
        workload!(
            20,
            "spmv.fit",
            "CSR SpMV, 1MB vector (gathers cache well)",
            |s| { Box::new(SparseMatrix::new(0x9000_0000, 1 << 14, 8, MB, s)) }
        ),
        workload!(
            21,
            "spmv.large",
            "CSR SpMV, 16MB vector (gathers miss)",
            |s| { Box::new(SparseMatrix::new(0x9000_0000, 1 << 16, 8, 16 * MB, s)) }
        ),
        workload!(
            22,
            "stack.deep",
            "recursive push/pop over up to 64K frames",
            |s| { Box::new(StackPattern::new(0xa000_0000, 1 << 16, 128, s)) }
        ),
        workload!(
            23,
            "mm.tiled",
            "blocked matmul, 512x512, 16-tile (cache friendly)",
            |_| { Box::new(TiledMatmul::new(0xb000_0000, 512, 16)) }
        ),
        workload!(
            24,
            "mm.naive",
            "unblocked matmul, 768x768 (B streams, thrashes)",
            |_| { Box::new(TiledMatmul::new(0xb000_0000, 768, 768)) }
        ),
        workload!(
            25,
            "phase.loopstream",
            "alternates 1.5MB permuted loop and 32MB stream phases",
            |s| {
                Box::new(Phased::new(
                    vec![
                        Box::new(LoopPattern::new_permuted(0xc000_0000, 3 * MB / 2, 1, s)),
                        Box::new(Stream::new(0xd000_0000, 32 * MB, 1, 0.0, s)),
                    ],
                    200_000,
                ))
            }
        ),
        workload!(
            26,
            "phase.chaseloop",
            "alternates 4MB chase and 1MB permuted loop phases",
            |s| {
                Box::new(Phased::new(
                    vec![
                        Box::new(PointerChase::new(0xc000_0000, 4 * MB, s)),
                        Box::new(LoopPattern::new_permuted(0xd000_0000, MB, 1, s ^ 9)),
                    ],
                    150_000,
                ))
            }
        ),
        workload!(
            27,
            "phase.hetero",
            "three-phase mix: zipf, stream, fields",
            |s| {
                Box::new(Phased::new(
                    vec![
                        Box::new(Zipf::new(0xc000_0000, 4 * MB, 1.0, s)),
                        Box::new(Stream::new(0xd000_0000, 16 * MB, 1, 0.0, s ^ 1)),
                        Box::new(FieldAccess::new(
                            0xe000_0000,
                            1 << 15,
                            256,
                            vec![0, 8, 24, 64],
                            0.8,
                            s ^ 2,
                        )),
                    ],
                    120_000,
                ))
            }
        ),
        workload!(
            28,
            "merge.sort",
            "3-way merge of 8MB runs with output stream",
            |s| { Box::new(Merge::new(0xf000_0000, 3, 8 * MB, s)) }
        ),
        workload!(
            29,
            "hash.build",
            "hash-join build: 8MB table scatter + input stream",
            |s| { Box::new(HashBuild::new(0x1_0000_0000, 8 * MB, 8 * MB, s)) }
        ),
        workload!(
            30,
            "btree.probe",
            "4-level B-tree probes, Zipf(0.9) keys",
            |s| {
                Box::new(BTreeProbe::new(
                    0x1_1000_0000,
                    vec![16, 1024, 32 * 1024, 512 * 1024],
                    0.9,
                    s,
                ))
            }
        ),
        workload!(
            31,
            "graph.bfs",
            "BFS over 1M vertices, 60% community locality",
            |s| { Box::new(GraphBfs::new(0x1_2000_0000, 1 << 20, 6, 0.6, s)) }
        ),
        workload!(
            32,
            "sat.clauses",
            "clause scan + Zipf literal gathers (sat_solver-like)",
            |s| {
                Box::new(Phased::new(
                    vec![
                        Box::new(Zipf::new(0x1_3000_0000, 2 * MB, 1.3, s)),
                        Box::new(Stream::new(0x1_4000_0000, 24 * MB, 1, 0.1, s ^ 3)),
                    ],
                    40_000,
                ))
            }
        ),
    ];
    debug_assert!(list.iter().enumerate().all(|(i, w)| w.id().0 == i));
    list
}

/// Number of workloads in the suite.
pub const SUITE_SIZE: usize = 33;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn suite_has_33_workloads_with_unique_names() {
        let s = suite();
        assert_eq!(s.len(), SUITE_SIZE);
        let names: HashSet<&str> = s.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), SUITE_SIZE);
    }

    #[test]
    fn ids_match_positions() {
        for (i, w) in suite().iter().enumerate() {
            assert_eq!(w.id(), WorkloadId(i));
        }
    }

    #[test]
    fn traces_are_deterministic() {
        for w in suite() {
            let a: Vec<_> = w.trace(99).take(200).collect();
            let b: Vec<_> = w.trace(99).take(200).collect();
            assert_eq!(a, b, "workload {} not deterministic", w.name());
        }
    }

    #[test]
    fn traces_differ_across_workloads() {
        let s = suite();
        let t0: Vec<_> = s[0].trace(1).take(50).collect();
        let t1: Vec<_> = s[1].trace(1).take(50).collect();
        assert_ne!(t0, t1);
    }

    #[test]
    fn every_trace_produces_valid_records() {
        for w in suite() {
            for a in w.trace(7).take(500) {
                assert_eq!(a.core, 0);
                assert!(a.pc > 0, "{}: zero pc", w.name());
                assert!(a.instructions() >= 1);
            }
        }
    }

    #[test]
    fn descriptions_are_nonempty() {
        for w in suite() {
            assert!(!w.description().is_empty());
            assert!(!format!("{w:?}").is_empty());
        }
    }
}

//! Multi-programmed workload mixes.
//!
//! Follows the paper's FIESTA-derived methodology (§4.2): each mix is 4
//! workloads chosen uniformly at random *without replacement* from the
//! suite. The CPU model in `mrp-cpu` runs all four concurrently against a
//! shared LLC, wrapping each program when it finishes its region so all
//! cores stay active for the whole measurement.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::workloads::{suite, Workload, WorkloadId};

/// Number of programs per mix (the paper uses 4-core mixes).
pub const CORES_PER_MIX: usize = 4;

/// A 4-program multi-programmed workload.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mix {
    members: [WorkloadId; CORES_PER_MIX],
    seed: u64,
}

impl Mix {
    /// Creates a mix from explicit members.
    pub fn new(members: [WorkloadId; CORES_PER_MIX], seed: u64) -> Self {
        Mix { members, seed }
    }

    /// The workload run on each core.
    pub fn members(&self) -> &[WorkloadId; CORES_PER_MIX] {
        &self.members
    }

    /// Seed used for the member traces.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Resolves members against the suite.
    pub fn workloads(&self) -> Vec<Workload> {
        let all = suite();
        self.members.iter().map(|id| all[id.0].clone()).collect()
    }

    /// Human-readable member list, e.g. `loop.fit+chase.2m+...`.
    pub fn label(&self) -> String {
        let all = suite();
        self.members
            .iter()
            .map(|id| all[id.0].name())
            .collect::<Vec<_>>()
            .join("+")
    }
}

/// Deterministic generator of mixes, mirroring the paper's 1000-mix list
/// with a train/test split.
#[derive(Debug, Clone)]
pub struct MixBuilder {
    seed: u64,
}

impl MixBuilder {
    /// Creates a builder; all mixes are a function of `seed`.
    pub fn new(seed: u64) -> Self {
        MixBuilder { seed }
    }

    /// Generates `count` mixes. Mix `i` is independent of `count`, so a
    /// prefix of a longer run is identical to a shorter run.
    pub fn mixes(&self, count: usize) -> Vec<Mix> {
        (0..count).map(|i| self.mix(i)).collect()
    }

    /// Generates the `index`-th mix: 4 distinct workloads chosen uniformly
    /// without replacement.
    pub fn mix(&self, index: usize) -> Mix {
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(index as u64),
        );
        let mut ids: Vec<usize> = (0..suite().len()).collect();
        ids.shuffle(&mut rng);
        let members = [
            WorkloadId(ids[0]),
            WorkloadId(ids[1]),
            WorkloadId(ids[2]),
            WorkloadId(ids[3]),
        ];
        Mix::new(members, self.seed.wrapping_add(index as u64 * 7919))
    }

    /// The paper's split: the first `train` mixes are the training set, the
    /// following `test` mixes the reporting set.
    pub fn train_test(&self, train: usize, test: usize) -> (Vec<Mix>, Vec<Mix>) {
        let all = self.mixes(train + test);
        let (a, b) = all.split_at(train);
        (a.to_vec(), b.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_have_distinct_members() {
        let b = MixBuilder::new(1);
        for m in b.mixes(64) {
            let mut ids: Vec<_> = m.members().to_vec();
            ids.sort();
            ids.dedup();
            assert_eq!(ids.len(), CORES_PER_MIX, "duplicate member in {m:?}");
        }
    }

    #[test]
    fn mixes_are_deterministic_and_prefix_stable() {
        let b = MixBuilder::new(5);
        let long = b.mixes(32);
        let short = b.mixes(8);
        assert_eq!(&long[..8], &short[..]);
        let again = MixBuilder::new(5).mixes(32);
        assert_eq!(long, again);
    }

    #[test]
    fn different_seeds_give_different_mixes() {
        let a = MixBuilder::new(1).mixes(16);
        let b = MixBuilder::new(2).mixes(16);
        assert_ne!(a, b);
    }

    #[test]
    fn train_test_split_partitions() {
        let b = MixBuilder::new(3);
        let (train, test) = b.train_test(10, 20);
        assert_eq!(train.len(), 10);
        assert_eq!(test.len(), 20);
        let all = b.mixes(30);
        assert_eq!(&all[..10], &train[..]);
        assert_eq!(&all[10..], &test[..]);
    }

    #[test]
    fn mix_label_joins_names() {
        let m = MixBuilder::new(1).mix(0);
        let label = m.label();
        assert_eq!(label.matches('+').count(), 3);
    }

    #[test]
    fn mix_workloads_resolve() {
        let m = MixBuilder::new(1).mix(3);
        let ws = m.workloads();
        assert_eq!(ws.len(), 4);
        for (w, id) in ws.iter().zip(m.members()) {
            assert_eq!(w.id(), *id);
        }
    }
}

//! Memory access traces and synthetic workloads.
//!
//! This crate provides the *workload substrate* for the multiperspective
//! reuse prediction reproduction:
//!
//! * [`MemoryAccess`] — the trace record consumed by the cache and CPU
//!   models in `mrp-cache` and `mrp-cpu`.
//! * [`generators`] — parameterized deterministic access-pattern generators
//!   spanning the locality spectrum (streaming, loops, pointer chasing,
//!   Zipfian object graphs, phased mixtures, ...).
//! * [`workloads`] — the named suite of 33 single-thread benchmarks used in
//!   place of SPEC CPU 2006 + CloudSuite (see `DESIGN.md` for the
//!   substitution rationale).
//! * [`mix`] — 4-core multi-programmed mix construction following the
//!   sample-balanced FIESTA methodology of the paper.
//!
//! All generators are deterministic functions of their seed, so every
//! experiment in the repository is exactly reproducible.
//!
//! # Example
//!
//! ```
//! use mrp_trace::workloads;
//!
//! let spec = workloads::suite();
//! let first = &spec[0];
//! let mut trace = first.trace(42);
//! let access = trace.next().expect("generators are infinite");
//! assert_eq!(access.core, 0);
//! ```

pub mod analysis;
pub mod codec;
pub mod generators;
pub mod mix;
pub mod record;
pub mod workloads;

pub use mix::{Mix, MixBuilder};
pub use record::{
    AccessKind, MemoryAccess, ServiceLevel, StreamEvent, BLOCK_BYTES, BLOCK_OFFSET_BITS,
};
pub use workloads::{Workload, WorkloadId};

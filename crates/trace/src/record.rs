//! Trace record types.

use std::fmt;

/// Cache block size in bytes used throughout the reproduction (the paper
/// assumes 64-byte blocks; the `offset` feature is defined as "1 to 6 bits in
/// a system with 64B blocks").
pub const BLOCK_BYTES: u64 = 64;

/// Number of address bits covered by the block offset (`log2(BLOCK_BYTES)`).
pub const BLOCK_OFFSET_BITS: u32 = 6;

/// Kind of memory operation performed by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A demand load.
    Load,
    /// A demand store.
    Store,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Load => f.write_str("load"),
            AccessKind::Store => f.write_str("store"),
        }
    }
}

/// One memory access in a program trace.
///
/// A trace is a sequence of these records. Non-memory instructions are not
/// traced individually; instead each record carries the number of non-memory
/// instructions that executed since the previous record
/// ([`MemoryAccess::non_memory_before`]), which the timing model in `mrp-cpu`
/// charges at the pipeline width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryAccess {
    /// Program counter of the memory instruction.
    pub pc: u64,
    /// Virtual (here: physical, identity-mapped) byte address accessed.
    pub address: u64,
    /// Core issuing the access (0 for single-thread traces).
    pub core: u8,
    /// Load or store.
    pub kind: AccessKind,
    /// Non-memory instructions executed since the previous traced access.
    pub non_memory_before: u8,
    /// True when the address of this access depends on the *data* of the
    /// previous access (pointer chasing, tree descent). The timing model
    /// serializes dependent accesses instead of overlapping their misses.
    pub dependent: bool,
}

impl MemoryAccess {
    /// Creates a load record on core 0 with a default instruction gap.
    ///
    /// Convenience for tests and examples; generators construct records
    /// directly.
    pub fn load(pc: u64, address: u64) -> Self {
        MemoryAccess {
            pc,
            address,
            core: 0,
            kind: AccessKind::Load,
            non_memory_before: 3,
            dependent: false,
        }
    }

    /// The 64-byte block address (address with the offset bits dropped).
    #[inline]
    pub fn block(&self) -> u64 {
        self.address >> BLOCK_OFFSET_BITS
    }

    /// The byte offset of the access within its cache block.
    #[inline]
    pub fn block_offset(&self) -> u64 {
        self.address & (BLOCK_BYTES - 1)
    }

    /// Total instructions represented by this record (the access itself plus
    /// the preceding non-memory instructions).
    #[inline]
    pub fn instructions(&self) -> u64 {
        u64::from(self.non_memory_before) + 1
    }
}

impl fmt::Display for MemoryAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} pc={:#x} addr={:#x} core={}",
            self.kind, self.pc, self.address, self.core
        )
    }
}

/// The highest level of the hierarchy a recorded access interacted with.
///
/// Recorded streams (see `mrp-cache`'s replay layer and codec v2) tag
/// each demand access with the level that serviced it. `Llc` means the
/// access missed the private levels and reached the last-level cache;
/// whether it hit there depends on the LLC policy and is decided at
/// replay time, not at record time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceLevel {
    /// Serviced by the L1 data cache.
    L1,
    /// Serviced by the unified L2.
    L2,
    /// Missed the private levels; bound for the LLC.
    Llc,
}

impl ServiceLevel {
    /// Two-bit encoding used by the codec and recording flag bytes.
    #[inline]
    pub fn encode(self) -> u8 {
        match self {
            ServiceLevel::L1 => 0,
            ServiceLevel::L2 => 1,
            ServiceLevel::Llc => 2,
        }
    }

    /// Inverse of [`ServiceLevel::encode`]; `None` for invalid encodings.
    #[inline]
    pub fn decode(bits: u8) -> Option<Self> {
        match bits {
            0 => Some(ServiceLevel::L1),
            1 => Some(ServiceLevel::L2),
            2 => Some(ServiceLevel::Llc),
            _ => None,
        }
    }
}

/// One event of a recorded upper-hierarchy stream: a demand access tagged
/// with its servicing level, or a prefetch fill bound for the LLC.
///
/// This is the unit the v2 trace codec serializes and the replay layer in
/// `mrp-cache` records; the sequence of these events is everything an LLC
/// policy (and the timing model) can observe, so one recorded stream
/// replays against any LLC policy and geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamEvent {
    /// The access (for prefetch events: the synthesized prefetch request,
    /// carrying the triggering access's PC — masked to the fake prefetch
    /// PC by the cache at replay time).
    pub access: MemoryAccess,
    /// True for hardware prefetch fills reaching the LLC.
    pub is_prefetch: bool,
    /// Servicing level of a demand access; always `Llc` for prefetches.
    pub level: ServiceLevel,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_strips_offset_bits() {
        let a = MemoryAccess::load(0x400000, 0x1234);
        assert_eq!(a.block(), 0x1234 >> 6);
        assert_eq!(a.block_offset(), 0x34);
    }

    #[test]
    fn blocks_share_prefix() {
        let a = MemoryAccess::load(0x400000, 0x1000);
        let b = MemoryAccess::load(0x400004, 0x103f);
        let c = MemoryAccess::load(0x400008, 0x1040);
        assert_eq!(a.block(), b.block());
        assert_ne!(a.block(), c.block());
    }

    #[test]
    fn instruction_accounting_includes_access() {
        let mut a = MemoryAccess::load(1, 2);
        a.non_memory_before = 0;
        assert_eq!(a.instructions(), 1);
        a.non_memory_before = 7;
        assert_eq!(a.instructions(), 8);
    }

    #[test]
    fn display_is_nonempty() {
        let a = MemoryAccess::load(0x400000, 0x1234);
        assert!(!format!("{a}").is_empty());
        assert!(!format!("{a:?}").is_empty());
    }
}

//! Binary trace serialization.
//!
//! A compact, versioned, dependency-free on-disk format for access
//! traces, so recorded workloads can be exported to (or imported from)
//! external tools:
//!
//! ```text
//! magic "MRPT" | u16 version | u16 reserved | u64 record count
//! then per record (fixed 19 bytes, little endian):
//!   u64 pc | u64 address | u8 core | u8 flags | u8 non_memory_before
//! flags: bit0 = store, bit1 = dependent
//! ```
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use mrp_trace::codec::{read_trace, write_trace};
//! use mrp_trace::workloads;
//!
//! let records: Vec<_> = workloads::suite()[0].trace(1).take(100).collect();
//! let mut buffer = Vec::new();
//! write_trace(&mut buffer, &records)?;
//! let decoded = read_trace(&mut buffer.as_slice())?;
//! assert_eq!(records, decoded);
//! # Ok(())
//! # }
//! ```

use std::io::{self, Read, Write};

use crate::record::{AccessKind, MemoryAccess};

/// File magic.
pub const MAGIC: [u8; 4] = *b"MRPT";

/// Current format version.
pub const VERSION: u16 = 1;

const FLAG_STORE: u8 = 1 << 0;
const FLAG_DEPENDENT: u8 = 1 << 1;

/// Writes `records` in the binary trace format.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_trace<W: Write>(writer: &mut W, records: &[MemoryAccess]) -> io::Result<()> {
    writer.write_all(&MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&0u16.to_le_bytes())?;
    writer.write_all(&(records.len() as u64).to_le_bytes())?;
    for r in records {
        writer.write_all(&r.pc.to_le_bytes())?;
        writer.write_all(&r.address.to_le_bytes())?;
        let mut flags = 0u8;
        if r.kind == AccessKind::Store {
            flags |= FLAG_STORE;
        }
        if r.dependent {
            flags |= FLAG_DEPENDENT;
        }
        writer.write_all(&[r.core, flags, r.non_memory_before])?;
    }
    Ok(())
}

/// Reads a trace written by [`write_trace`].
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] on a bad magic or unsupported
/// version, and propagates underlying I/O errors (including unexpected
/// EOF on truncated files).
pub fn read_trace<R: Read>(reader: &mut R) -> io::Result<Vec<MemoryAccess>> {
    let mut header = [0u8; 16];
    reader.read_exact(&mut header)?;
    if header[0..4] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad trace magic",
        ));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {version}"),
        ));
    }
    let count = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let mut records = Vec::with_capacity(count.min(1 << 24) as usize);
    let mut buf = [0u8; 19];
    for _ in 0..count {
        reader.read_exact(&mut buf)?;
        let pc = u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes"));
        let address = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
        let core = buf[16];
        let flags = buf[17];
        records.push(MemoryAccess {
            pc,
            address,
            core,
            kind: if flags & FLAG_STORE != 0 {
                AccessKind::Store
            } else {
                AccessKind::Load
            },
            non_memory_before: buf[18],
            dependent: flags & FLAG_DEPENDENT != 0,
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn round_trips_every_workload_prefix() {
        for w in workloads::suite().iter().take(8) {
            let records: Vec<_> = w.trace(3).take(500).collect();
            let mut buffer = Vec::new();
            write_trace(&mut buffer, &records).expect("write");
            let decoded = read_trace(&mut buffer.as_slice()).expect("read");
            assert_eq!(records, decoded, "{} corrupted", w.name());
        }
    }

    #[test]
    fn record_size_is_fixed() {
        let records: Vec<_> = workloads::suite()[0].trace(1).take(10).collect();
        let mut buffer = Vec::new();
        write_trace(&mut buffer, &records).expect("write");
        assert_eq!(buffer.len(), 16 + 10 * 19);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace(&mut &b"NOPE0000000000000000"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buffer = Vec::new();
        write_trace(&mut buffer, &[]).expect("write");
        buffer[4] = 99;
        let err = read_trace(&mut buffer.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_file_errors_cleanly() {
        let records: Vec<_> = workloads::suite()[0].trace(1).take(5).collect();
        let mut buffer = Vec::new();
        write_trace(&mut buffer, &records).expect("write");
        buffer.truncate(buffer.len() - 3);
        assert!(read_trace(&mut buffer.as_slice()).is_err());
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buffer = Vec::new();
        write_trace(&mut buffer, &[]).expect("write");
        assert_eq!(read_trace(&mut buffer.as_slice()).expect("read"), vec![]);
    }
}

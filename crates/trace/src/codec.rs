//! Binary trace serialization.
//!
//! A compact, versioned, dependency-free on-disk format for access
//! traces, so recorded workloads can be exported to (or imported from)
//! external tools:
//!
//! ```text
//! magic "MRPT" | u16 version | u16 reserved | u64 record count
//! v1, per record (fixed 19 bytes, little endian):
//!   u64 pc | u64 address | u8 core | u8 flags | u8 non_memory_before
//! flags: bit0 = store, bit1 = dependent
//! v2, per record (fixed 20 bytes, little endian):
//!   u64 pc | u64 address | u8 core | u8 flags | u16 gap
//! flags: bit0 = store, bit1 = dependent, bit2 = prefetch,
//!        bits3-4 = servicing level (0 = L1, 1 = L2, 2 = LLC-bound)
//! ```
//!
//! v1 serializes a raw access trace and loses the prefetch flag; v2
//! serializes a recorded *stream* ([`crate::StreamEvent`]) — each demand
//! access tagged with the level that serviced it, interleaved with the
//! prefetch fills issued by the hardware prefetcher — plus the per-gap
//! CPU metadata (`gap` = non-memory instructions before the access)
//! needed to drive the timing model. [`read_stream`] accepts both
//! versions, mapping v1 records to non-prefetch, LLC-bound events, so
//! old traces stay readable.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use mrp_trace::codec::{read_trace, write_trace};
//! use mrp_trace::workloads;
//!
//! let records: Vec<_> = workloads::suite()[0].trace(1).take(100).collect();
//! let mut buffer = Vec::new();
//! write_trace(&mut buffer, &records)?;
//! let decoded = read_trace(&mut buffer.as_slice())?;
//! assert_eq!(records, decoded);
//! # Ok(())
//! # }
//! ```

use std::io::{self, Read, Write};

use crate::record::{AccessKind, MemoryAccess, ServiceLevel, StreamEvent};

/// File magic.
pub const MAGIC: [u8; 4] = *b"MRPT";

/// Raw-trace format version (19-byte records, no prefetch flag).
pub const VERSION: u16 = 1;

/// Stream format version (20-byte records with prefetch flag, servicing
/// level, and a 16-bit instruction gap).
pub const VERSION_V2: u16 = 2;

/// v2 flags bit: the access is a store.
pub const FLAG_STORE: u8 = 1 << 0;
/// v2 flags bit: the access's address depends on the previous access.
pub const FLAG_DEPENDENT: u8 = 1 << 1;
/// v2 flags bit: the record is a hardware prefetch fill.
pub const FLAG_PREFETCH: u8 = 1 << 2;
/// Shift of the two servicing-level bits in the v2 flags byte.
pub const LEVEL_SHIFT: u8 = 3;
/// Mask of the two servicing-level bits in the v2 flags byte.
pub const LEVEL_MASK: u8 = 0b11 << LEVEL_SHIFT;

/// Writes `records` in the binary trace format.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_trace<W: Write>(writer: &mut W, records: &[MemoryAccess]) -> io::Result<()> {
    writer.write_all(&MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&0u16.to_le_bytes())?;
    writer.write_all(&(records.len() as u64).to_le_bytes())?;
    for r in records {
        writer.write_all(&r.pc.to_le_bytes())?;
        writer.write_all(&r.address.to_le_bytes())?;
        let mut flags = 0u8;
        if r.kind == AccessKind::Store {
            flags |= FLAG_STORE;
        }
        if r.dependent {
            flags |= FLAG_DEPENDENT;
        }
        writer.write_all(&[r.core, flags, r.non_memory_before])?;
    }
    Ok(())
}

/// Reads a trace written by [`write_trace`].
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] on a bad magic or unsupported
/// version, and propagates underlying I/O errors (including unexpected
/// EOF on truncated files).
pub fn read_trace<R: Read>(reader: &mut R) -> io::Result<Vec<MemoryAccess>> {
    let mut header = [0u8; 16];
    reader.read_exact(&mut header)?;
    if header[0..4] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad trace magic",
        ));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {version}"),
        ));
    }
    let count = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let mut records = Vec::with_capacity(count.min(1 << 24) as usize);
    let mut buf = [0u8; 19];
    for _ in 0..count {
        reader.read_exact(&mut buf)?;
        let pc = u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes"));
        let address = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
        let core = buf[16];
        let flags = buf[17];
        records.push(MemoryAccess {
            pc,
            address,
            core,
            kind: if flags & FLAG_STORE != 0 {
                AccessKind::Store
            } else {
                AccessKind::Load
            },
            non_memory_before: buf[18],
            dependent: flags & FLAG_DEPENDENT != 0,
        });
    }
    Ok(records)
}

/// Packs a stream event's booleans and level into a v2 flags byte.
#[inline]
pub fn encode_event_flags(event: &StreamEvent) -> u8 {
    let mut flags = 0u8;
    if event.access.kind == AccessKind::Store {
        flags |= FLAG_STORE;
    }
    if event.access.dependent {
        flags |= FLAG_DEPENDENT;
    }
    if event.is_prefetch {
        flags |= FLAG_PREFETCH;
    }
    flags | (event.level.encode() << LEVEL_SHIFT)
}

/// Unpacks a v2 flags byte into `(kind, dependent, is_prefetch, level)`.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] on an invalid level encoding.
#[inline]
pub fn decode_event_flags(flags: u8) -> io::Result<(AccessKind, bool, bool, ServiceLevel)> {
    let level = ServiceLevel::decode((flags & LEVEL_MASK) >> LEVEL_SHIFT).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("invalid servicing level in flags {flags:#04x}"),
        )
    })?;
    let kind = if flags & FLAG_STORE != 0 {
        AccessKind::Store
    } else {
        AccessKind::Load
    };
    Ok((
        kind,
        flags & FLAG_DEPENDENT != 0,
        flags & FLAG_PREFETCH != 0,
        level,
    ))
}

/// Writes `events` in the v2 stream format.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_stream<W: Write>(writer: &mut W, events: &[StreamEvent]) -> io::Result<()> {
    writer.write_all(&MAGIC)?;
    writer.write_all(&VERSION_V2.to_le_bytes())?;
    writer.write_all(&0u16.to_le_bytes())?;
    writer.write_all(&(events.len() as u64).to_le_bytes())?;
    for e in events {
        writer.write_all(&e.access.pc.to_le_bytes())?;
        writer.write_all(&e.access.address.to_le_bytes())?;
        writer.write_all(&[e.access.core, encode_event_flags(e)])?;
        writer.write_all(&u16::from(e.access.non_memory_before).to_le_bytes())?;
    }
    Ok(())
}

/// Reads a stream written by [`write_stream`] — or, for compatibility, a
/// v1 trace written by [`write_trace`], whose records become non-prefetch
/// LLC-bound events.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] on a bad magic, an unsupported
/// version, an instruction gap exceeding [`MemoryAccess`]'s 8-bit field,
/// or an invalid level encoding, and propagates underlying I/O errors.
pub fn read_stream<R: Read>(reader: &mut R) -> io::Result<Vec<StreamEvent>> {
    let mut header = [0u8; 16];
    reader.read_exact(&mut header)?;
    if header[0..4] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad trace magic",
        ));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION && version != VERSION_V2 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {version}"),
        ));
    }
    let count = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let mut events = Vec::with_capacity(count.min(1 << 24) as usize);
    let record_bytes = if version == VERSION { 19 } else { 20 };
    let mut buf = [0u8; 20];
    for _ in 0..count {
        reader.read_exact(&mut buf[..record_bytes])?;
        let pc = u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes"));
        let address = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
        let core = buf[16];
        let flags = buf[17];
        let (gap, is_prefetch, level) = if version == VERSION {
            // v1 carries no prefetch flag or level; treat every record as
            // a demand access bound for the LLC.
            (u16::from(buf[18]), false, ServiceLevel::Llc)
        } else {
            let (_, _, is_prefetch, level) = decode_event_flags(flags)?;
            let gap = u16::from_le_bytes([buf[18], buf[19]]);
            (gap, is_prefetch, level)
        };
        let non_memory_before = u8::try_from(gap).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("instruction gap {gap} exceeds the 8-bit access field"),
            )
        })?;
        events.push(StreamEvent {
            access: MemoryAccess {
                pc,
                address,
                core,
                kind: if flags & FLAG_STORE != 0 {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                },
                non_memory_before,
                dependent: flags & FLAG_DEPENDENT != 0,
            },
            is_prefetch,
            level,
        });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn round_trips_every_workload_prefix() {
        for w in workloads::suite().iter().take(8) {
            let records: Vec<_> = w.trace(3).take(500).collect();
            let mut buffer = Vec::new();
            write_trace(&mut buffer, &records).expect("write");
            let decoded = read_trace(&mut buffer.as_slice()).expect("read");
            assert_eq!(records, decoded, "{} corrupted", w.name());
        }
    }

    #[test]
    fn record_size_is_fixed() {
        let records: Vec<_> = workloads::suite()[0].trace(1).take(10).collect();
        let mut buffer = Vec::new();
        write_trace(&mut buffer, &records).expect("write");
        assert_eq!(buffer.len(), 16 + 10 * 19);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace(&mut &b"NOPE0000000000000000"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buffer = Vec::new();
        write_trace(&mut buffer, &[]).expect("write");
        buffer[4] = 99;
        let err = read_trace(&mut buffer.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_file_errors_cleanly() {
        let records: Vec<_> = workloads::suite()[0].trace(1).take(5).collect();
        let mut buffer = Vec::new();
        write_trace(&mut buffer, &records).expect("write");
        buffer.truncate(buffer.len() - 3);
        assert!(read_trace(&mut buffer.as_slice()).is_err());
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buffer = Vec::new();
        write_trace(&mut buffer, &[]).expect("write");
        assert_eq!(read_trace(&mut buffer.as_slice()).expect("read"), vec![]);
    }

    /// A small stream exercising every flag combination v2 must preserve.
    fn sample_stream() -> Vec<StreamEvent> {
        workloads::suite()[0]
            .trace(7)
            .take(64)
            .enumerate()
            .map(|(i, access)| StreamEvent {
                access,
                is_prefetch: i % 3 == 0,
                level: match i % 4 {
                    0 | 1 => ServiceLevel::Llc,
                    2 => ServiceLevel::L1,
                    _ => ServiceLevel::L2,
                },
            })
            .collect()
    }

    #[test]
    fn v2_round_trips_prefetch_flag_and_level() {
        let events = sample_stream();
        let mut buffer = Vec::new();
        write_stream(&mut buffer, &events).expect("write");
        let decoded = read_stream(&mut buffer.as_slice()).expect("read");
        assert_eq!(events, decoded);
    }

    #[test]
    fn v2_record_size_is_fixed() {
        let events = sample_stream();
        let mut buffer = Vec::new();
        write_stream(&mut buffer, &events).expect("write");
        assert_eq!(buffer.len(), 16 + events.len() * 20);
        assert_eq!(u16::from_le_bytes([buffer[4], buffer[5]]), VERSION_V2);
    }

    #[test]
    fn read_stream_accepts_v1_traces() {
        let records: Vec<_> = workloads::suite()[1].trace(2).take(200).collect();
        let mut buffer = Vec::new();
        write_trace(&mut buffer, &records).expect("write v1");
        let events = read_stream(&mut buffer.as_slice()).expect("read as stream");
        assert_eq!(events.len(), records.len());
        for (event, record) in events.iter().zip(&records) {
            assert_eq!(event.access, *record);
            assert!(!event.is_prefetch, "v1 records carry no prefetch flag");
            assert_eq!(event.level, ServiceLevel::Llc);
        }
    }

    #[test]
    fn read_trace_still_rejects_v2_streams() {
        let mut buffer = Vec::new();
        write_stream(&mut buffer, &sample_stream()).expect("write");
        let err = read_trace(&mut buffer.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn read_stream_rejects_invalid_level() {
        let mut buffer = Vec::new();
        write_stream(&mut buffer, &sample_stream()).expect("write");
        buffer[16 + 17] = LEVEL_MASK; // level bits = 3: invalid
        let err = read_stream(&mut buffer.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}

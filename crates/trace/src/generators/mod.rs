//! Deterministic synthetic access-pattern generators.
//!
//! Each generator implements [`AccessPattern`], an infinite stream of
//! [`MemoryAccess`] records that is a pure function of its construction
//! parameters and seed. The named benchmark suite in
//! [`crate::workloads`] is assembled from these primitives.
//!
//! The generators are designed to cover the locality regimes that matter to
//! a last-level-cache reuse predictor:
//!
//! * dead-on-arrival streams ([`Stream`], [`Merge`]),
//! * working sets that fit / almost fit / thrash ([`LoopPattern`]),
//! * dependent irregular accesses ([`PointerChase`], [`BTreeProbe`],
//!   [`GraphBfs`]),
//! * skewed popularity ([`Zipf`], [`KeyValue`]),
//! * spatially structured object/field access ([`FieldAccess`],
//!   [`SparseMatrix`], [`TiledMatmul`]),
//! * phase changes ([`Phased`]).

mod bfs;
mod btree;
mod chase;
mod fields;
mod hash_build;
mod kv;
mod looped;
mod matmul;
mod merge;
mod phased;
mod scan_hot;
mod spmv;
mod stack;
mod stream;
mod util;
mod walk;
mod zipf;

pub use bfs::GraphBfs;
pub use btree::BTreeProbe;
pub use chase::PointerChase;
pub use fields::{default_layout, FieldAccess};
pub use hash_build::HashBuild;
pub use kv::KeyValue;
pub use looped::LoopPattern;
pub use matmul::TiledMatmul;
pub use merge::Merge;
pub use phased::Phased;
pub use scan_hot::ScanHot;
pub use spmv::SparseMatrix;
pub use stack::StackPattern;
pub use stream::Stream;
pub use util::ZipfSampler;
pub use walk::GaussianWalk;
pub use zipf::Zipf;

use crate::record::MemoryAccess;

/// An infinite, deterministic stream of memory accesses.
///
/// Implementations must be pure functions of their constructor arguments:
/// two generators built with the same parameters and seed produce identical
/// streams. This property underpins reproducibility of every experiment and
/// is checked by property tests.
pub trait AccessPattern {
    /// Produces the next access in the stream.
    fn next_access(&mut self) -> MemoryAccess;

    /// Appends the next `n` accesses to `out`.
    ///
    /// The default body is monomorphized per implementor, so even through
    /// `dyn AccessPattern` the per-access `next_access` calls inside are
    /// direct — batch consumers (the serving fleet's round fill) pay one
    /// virtual dispatch per batch instead of one per access.
    fn fill(&mut self, n: usize, out: &mut Vec<MemoryAccess>) {
        out.reserve(n);
        for _ in 0..n {
            out.push(self.next_access());
        }
    }
}

/// Adapter exposing any [`AccessPattern`] as an [`Iterator`].
#[derive(Debug)]
pub struct PatternIter<P> {
    pattern: P,
}

impl<P: AccessPattern> PatternIter<P> {
    /// Wraps a pattern.
    pub fn new(pattern: P) -> Self {
        PatternIter { pattern }
    }

    /// Returns the wrapped pattern.
    pub fn into_inner(self) -> P {
        self.pattern
    }
}

impl<P: AccessPattern> Iterator for PatternIter<P> {
    type Item = MemoryAccess;

    fn next(&mut self) -> Option<MemoryAccess> {
        Some(self.pattern.next_access())
    }
}

impl AccessPattern for Box<dyn AccessPattern + Send> {
    fn next_access(&mut self) -> MemoryAccess {
        (**self).next_access()
    }

    fn fill(&mut self, n: usize, out: &mut Vec<MemoryAccess>) {
        (**self).fill(n, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_iter_is_infinite_and_matches_pattern() {
        let mut direct = Stream::new(0x100, 1 << 10, 1, 0.0, 7);
        let it = PatternIter::new(Stream::new(0x100, 1 << 10, 1, 0.0, 7));
        for (i, a) in it.take(1000).enumerate() {
            assert_eq!(a, direct.next_access(), "diverged at access {i}");
        }
    }

    #[test]
    fn boxed_pattern_delegates() {
        let mut boxed: Box<dyn AccessPattern + Send> =
            Box::new(Stream::new(0x100, 1 << 10, 1, 0.0, 7));
        let mut direct = Stream::new(0x100, 1 << 10, 1, 0.0, 7);
        for _ in 0..100 {
            assert_eq!(boxed.next_access(), direct.next_access());
        }
    }
}

//! Tiled dense matrix-multiply access pattern.

use super::util::access;
use super::AccessPattern;
#[cfg(test)]
use crate::record::BLOCK_BYTES;
use crate::record::{AccessKind, MemoryAccess};

/// Blocked `C += A * B` over `n × n` matrices of 8-byte elements with
/// `tile × tile` tiles.
///
/// A-tile rows are reused `tile` times, B streams column tiles, C
/// accumulates. Reuse distance is controlled by the tile size, so the same
/// generator models both cache-friendly (small tile) and thrashing (large
/// tile) dense kernels.
#[derive(Debug)]
pub struct TiledMatmul {
    region_base: u64,
    n: u64,
    tile: u64,
    // Loop indices: tile coordinates (ti, tj, tk) and intra-tile (i, j, k).
    ti: u64,
    tj: u64,
    tk: u64,
    i: u64,
    j: u64,
    k: u64,
    phase: u8,
}

impl TiledMatmul {
    /// Creates the pattern for `n × n` matrices with `tile`-sized blocking.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `tile == 0`, or `tile > n`.
    pub fn new(region_base: u64, n: u64, tile: u64) -> Self {
        assert!(n > 0 && tile > 0 && tile <= n, "invalid matmul geometry");
        TiledMatmul {
            region_base,
            n,
            tile,
            ti: 0,
            tj: 0,
            tk: 0,
            i: 0,
            j: 0,
            k: 0,
            phase: 0,
        }
    }

    fn element_addr(&self, matrix: u64, row: u64, col: u64) -> u64 {
        let matrix_bytes = self.n * self.n * 8;
        self.region_base + matrix * matrix_bytes + (row * self.n + col) * 8
    }

    fn advance(&mut self) {
        self.k += 1;
        if self.k < self.tile {
            return;
        }
        self.k = 0;
        self.j += 1;
        if self.j < self.tile {
            return;
        }
        self.j = 0;
        self.i += 1;
        if self.i < self.tile {
            return;
        }
        self.i = 0;
        self.tk += 1;
        let tiles = self.n / self.tile;
        if self.tk < tiles {
            return;
        }
        self.tk = 0;
        self.tj += 1;
        if self.tj < tiles {
            return;
        }
        self.tj = 0;
        self.ti = (self.ti + 1) % tiles;
    }
}

impl AccessPattern for TiledMatmul {
    fn next_access(&mut self) -> MemoryAccess {
        let row = self.ti * self.tile + self.i;
        let col = self.tj * self.tile + self.j;
        let inner = self.tk * self.tile + self.k;

        match self.phase {
            0 => {
                self.phase = 1;
                access(
                    0x004a_0000,
                    0,
                    self.element_addr(0, row, inner),
                    AccessKind::Load,
                )
            }
            1 => {
                self.phase = 2;
                access(
                    0x004a_0000,
                    1,
                    self.element_addr(1, inner, col),
                    AccessKind::Load,
                )
            }
            _ => {
                self.phase = 0;
                let a = access(
                    0x004a_0000,
                    2,
                    self.element_addr(2, row, col),
                    AccessKind::Store,
                );
                self.advance();
                a
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_phases_cycle_a_b_c() {
        let mut g = TiledMatmul::new(0, 64, 8);
        let a = g.next_access();
        let b = g.next_access();
        let c = g.next_access();
        assert_eq!(a.kind, AccessKind::Load);
        assert_eq!(b.kind, AccessKind::Load);
        assert_eq!(c.kind, AccessKind::Store);
    }

    #[test]
    fn matmul_addresses_stay_in_three_matrices() {
        let n = 32u64;
        let mut g = TiledMatmul::new(0, n, 4);
        let limit = 3 * n * n * 8;
        for _ in 0..5000 {
            assert!(g.next_access().address < limit);
        }
    }

    #[test]
    fn small_tile_reuses_a_rows() {
        let mut g = TiledMatmul::new(0, 16, 4);
        let mut a_blocks = std::collections::HashMap::new();
        for _ in 0..3000 {
            let acc = g.next_access();
            if acc.address < 16 * 16 * 8 {
                *a_blocks.entry(acc.address / BLOCK_BYTES).or_insert(0usize) += 1;
            }
        }
        assert!(a_blocks.values().any(|&c| c > 4), "no A-row reuse");
    }
}

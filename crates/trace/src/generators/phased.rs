//! Phase-alternating composite pattern.

use super::AccessPattern;
use crate::record::MemoryAccess;

/// Cycles through child patterns, running each for a fixed number of
/// accesses before switching.
///
/// Models programs with distinct phases (compilers, multi-kernel science
/// codes). Phase changes are where history-based predictors mispredict and
/// must retrain, so phased workloads stress training latency.
pub struct Phased {
    children: Vec<Box<dyn AccessPattern + Send>>,
    phase_length: u64,
    position: u64,
    current: usize,
}

impl std::fmt::Debug for Phased {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Phased")
            .field("children", &self.children.len())
            .field("phase_length", &self.phase_length)
            .field("position", &self.position)
            .field("current", &self.current)
            .finish()
    }
}

impl Phased {
    /// Creates the composite; each child runs for `phase_length` accesses
    /// per turn.
    ///
    /// # Panics
    ///
    /// Panics if `children` is empty or `phase_length == 0`.
    pub fn new(children: Vec<Box<dyn AccessPattern + Send>>, phase_length: u64) -> Self {
        assert!(!children.is_empty(), "need at least one phase");
        assert!(phase_length > 0, "phase length must be nonzero");
        Phased {
            children,
            phase_length,
            position: 0,
            current: 0,
        }
    }

    /// Number of phases.
    pub fn phases(&self) -> usize {
        self.children.len()
    }
}

impl AccessPattern for Phased {
    fn next_access(&mut self) -> MemoryAccess {
        if self.position == self.phase_length {
            self.position = 0;
            self.current = (self.current + 1) % self.children.len();
        }
        self.position += 1;
        self.children[self.current].next_access()
    }
}

#[cfg(test)]
mod tests {
    use super::super::{LoopPattern, Stream};
    use super::*;

    #[test]
    fn phases_alternate_on_schedule() {
        let loop_region = 0u64;
        let stream_region = 1 << 30;
        let p = Phased::new(
            vec![
                Box::new(LoopPattern::new(loop_region, 16, 1)),
                Box::new(Stream::new(stream_region, 1 << 20, 1, 0.0, 1)),
            ],
            10,
        );
        let mut p = p;
        for i in 0..40 {
            let a = p.next_access();
            let in_stream = a.address >= stream_region;
            let expected_stream = (i / 10) % 2 == 1;
            assert_eq!(in_stream, expected_stream, "access {i}");
        }
    }

    #[test]
    fn single_phase_behaves_like_child() {
        let mut p = Phased::new(vec![Box::new(LoopPattern::new(0, 8, 1))], 5);
        let mut child = LoopPattern::new(0, 8, 1);
        for _ in 0..32 {
            assert_eq!(p.next_access(), child.next_access());
        }
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn rejects_empty_children() {
        let _ = Phased::new(vec![], 10);
    }
}

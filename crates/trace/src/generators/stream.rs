//! Sequential streaming access pattern.

use rand::rngs::SmallRng;
use rand::Rng;

use super::util::{access, rng_from_seed};
use super::AccessPattern;
use crate::record::{AccessKind, MemoryAccess, BLOCK_BYTES};

/// A sequential sweep over a large region.
///
/// Models array-streaming kernels (e.g. `bwaves`, `libquantum`-style code):
/// blocks are referenced once per sweep and are dead on arrival in any cache
/// smaller than the footprint. A non-unit `stride_blocks` models strided
/// column accesses.
#[derive(Debug)]
pub struct Stream {
    region_base: u64,
    footprint_blocks: u64,
    stride_blocks: u64,
    store_ratio: f64,
    cursor: u64,
    rng: SmallRng,
}

impl Stream {
    /// Creates a streaming pattern over `footprint_blocks` blocks starting at
    /// `region_base`, advancing `stride_blocks` per access, with a fraction
    /// `store_ratio` of accesses being stores.
    ///
    /// # Panics
    ///
    /// Panics if `footprint_blocks == 0` or `stride_blocks == 0`.
    pub fn new(
        region_base: u64,
        footprint_blocks: u64,
        stride_blocks: u64,
        store_ratio: f64,
        seed: u64,
    ) -> Self {
        assert!(footprint_blocks > 0, "footprint must be nonzero");
        assert!(stride_blocks > 0, "stride must be nonzero");
        Stream {
            region_base,
            footprint_blocks,
            stride_blocks,
            store_ratio,
            cursor: 0,
            rng: rng_from_seed(seed),
        }
    }
}

impl AccessPattern for Stream {
    fn next_access(&mut self) -> MemoryAccess {
        let block = self.cursor % self.footprint_blocks;
        self.cursor = (self.cursor + self.stride_blocks) % self.footprint_blocks.max(1);
        // Advance by one block extra on wrap so strided sweeps eventually
        // visit every residue class.
        if block + self.stride_blocks >= self.footprint_blocks {
            self.cursor = (self.cursor + 1) % self.footprint_blocks;
        }
        let kind = if self.rng.gen::<f64>() < self.store_ratio {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        let site = (block % 4) as u32;
        access(
            0x0040_0000,
            site,
            self.region_base + block * BLOCK_BYTES,
            kind,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_visits_blocks_sequentially() {
        let mut s = Stream::new(0, 1024, 1, 0.0, 1);
        let a = s.next_access();
        let b = s.next_access();
        assert_eq!(b.block(), a.block() + 1);
    }

    #[test]
    fn stream_wraps_within_footprint() {
        let mut s = Stream::new(0, 8, 1, 0.0, 1);
        for _ in 0..100 {
            let a = s.next_access();
            assert!(a.block() < 8);
        }
    }

    #[test]
    fn stream_store_ratio_one_gives_stores() {
        let mut s = Stream::new(0, 64, 1, 1.0, 1);
        for _ in 0..32 {
            assert_eq!(s.next_access().kind, AccessKind::Store);
        }
    }

    #[test]
    fn strided_stream_advances_by_stride() {
        let mut s = Stream::new(0, 1 << 20, 4, 0.0, 1);
        let a = s.next_access();
        let b = s.next_access();
        assert_eq!(b.block(), a.block() + 4);
    }
}

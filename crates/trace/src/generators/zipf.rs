//! Zipf-distributed block popularity.

use rand::rngs::SmallRng;

use super::util::{access, block_to_addr, rng_from_seed, ZipfSampler};
use super::AccessPattern;
use crate::record::{AccessKind, MemoryAccess};

/// Independent accesses with Zipf-distributed block popularity.
///
/// Models skewed-popularity data (caches of web objects, hot database
/// pages). With high skew a small hot set dominates and should be protected;
/// the cold tail is effectively dead on arrival. Block popularity rank is
/// scattered over the address space so that popularity does not correlate
/// with address — the predictor must learn it from behavior.
#[derive(Debug)]
pub struct Zipf {
    region_base: u64,
    sampler: ZipfSampler,
    scatter: u64,
    footprint_blocks: u64,
    /// `footprint_blocks - 1` when the footprint is a power of two: the
    /// scatter reduction becomes a mask instead of a 64-bit division.
    footprint_mask: Option<u64>,
    rng: SmallRng,
}

impl Zipf {
    /// Creates a Zipf(θ = `theta`) pattern over `footprint_blocks` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `footprint_blocks == 0`.
    pub fn new(region_base: u64, footprint_blocks: u64, theta: f64, seed: u64) -> Self {
        assert!(footprint_blocks > 0, "footprint must be nonzero");
        let n = footprint_blocks.min(1 << 20) as usize;
        Zipf {
            region_base,
            sampler: ZipfSampler::new(n, theta),
            scatter: 0x9e37_79b9_7f4a_7c15,
            footprint_blocks,
            footprint_mask: footprint_blocks
                .is_power_of_two()
                .then(|| footprint_blocks - 1),
            rng: rng_from_seed(seed),
        }
    }
}

impl AccessPattern for Zipf {
    fn next_access(&mut self) -> MemoryAccess {
        let rank = self.sampler.sample(&mut self.rng) as u64;
        let scattered = rank.wrapping_mul(self.scatter);
        let block = match self.footprint_mask {
            Some(mask) => scattered & mask,
            None => scattered % self.footprint_blocks,
        };
        let site = (rank % 6) as u32;
        access(
            0x0043_0000,
            site,
            block_to_addr(self.region_base, block),
            AccessKind::Load,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn zipf_has_hot_blocks() {
        let mut z = Zipf::new(0, 1 << 14, 1.2, 4);
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for _ in 0..30_000 {
            *counts.entry(z.next_access().block()).or_default() += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max > 300, "hottest block only seen {max} times");
    }

    #[test]
    fn zipf_addresses_stay_in_region() {
        let base = 0x2000_0000u64;
        let blocks = 1u64 << 10;
        let mut z = Zipf::new(base, blocks, 0.8, 4);
        for _ in 0..1000 {
            let a = z.next_access();
            assert!(a.address >= base);
            assert!(a.address < base + blocks * crate::record::BLOCK_BYTES);
        }
    }
}

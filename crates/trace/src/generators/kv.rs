//! Key-value store lookup pattern.

use rand::rngs::SmallRng;
use rand::Rng;

use super::util::{access, block_to_addr, dependent_access, rng_from_seed, ZipfSampler};
use super::AccessPattern;
use crate::record::{AccessKind, MemoryAccess, BLOCK_BYTES};

/// Hash-table lookups followed by value reads, like a memcached-style
/// server (CloudSuite's `data_caching`).
///
/// Each request: one bucket-array load (random, popularity-skewed), a short
/// chain walk, then a sequential read of the value blocks. Bucket and chain
/// blocks have high reuse when skew is high; large values behave like short
/// streams.
#[derive(Debug)]
pub struct KeyValue {
    region_base: u64,
    buckets: u64,
    chain_blocks: u64,
    value_blocks_max: u32,
    popularity: ZipfSampler,
    rng: SmallRng,
    state: KvState,
}

#[derive(Debug)]
enum KvState {
    NextRequest,
    Chain { key: u64, remaining: u32 },
    Value { key: u64, index: u32, length: u32 },
}

impl KeyValue {
    /// Creates the pattern with `buckets` hash buckets, a chain region of
    /// `chain_blocks` blocks, values of up to `value_blocks_max` blocks, and
    /// key popularity Zipf(`theta`).
    ///
    /// # Panics
    ///
    /// Panics if any size parameter is zero.
    pub fn new(
        region_base: u64,
        buckets: u64,
        chain_blocks: u64,
        value_blocks_max: u32,
        theta: f64,
        seed: u64,
    ) -> Self {
        assert!(buckets > 0 && chain_blocks > 0 && value_blocks_max > 0);
        let n = buckets.min(1 << 18) as usize;
        KeyValue {
            region_base,
            buckets,
            chain_blocks,
            value_blocks_max,
            popularity: ZipfSampler::new(n, theta),
            rng: rng_from_seed(seed),
            state: KvState::NextRequest,
        }
    }

    fn bucket_region(&self) -> u64 {
        self.region_base
    }

    fn chain_region(&self) -> u64 {
        self.region_base + self.buckets * BLOCK_BYTES
    }

    fn value_region(&self) -> u64 {
        self.chain_region() + self.chain_blocks * BLOCK_BYTES
    }
}

impl AccessPattern for KeyValue {
    fn next_access(&mut self) -> MemoryAccess {
        loop {
            match self.state {
                KvState::NextRequest => {
                    let key = self.popularity.sample(&mut self.rng) as u64;
                    let bucket = key.wrapping_mul(0x9e37_79b9_7f4a_7c15) % self.buckets;
                    self.state = KvState::Chain {
                        key,
                        remaining: self.rng.gen_range(1..=2),
                    };
                    return access(
                        0x0047_0000,
                        0,
                        block_to_addr(self.bucket_region(), bucket),
                        AccessKind::Load,
                    );
                }
                KvState::Chain { key, remaining } => {
                    if remaining == 0 {
                        let length = 1 + (key % u64::from(self.value_blocks_max)) as u32;
                        self.state = KvState::Value {
                            key,
                            index: 0,
                            length,
                        };
                        continue;
                    }
                    let node = key
                        .wrapping_mul(0x2545_f491_4f6c_dd1d)
                        .wrapping_add(u64::from(remaining))
                        % self.chain_blocks;
                    self.state = KvState::Chain {
                        key,
                        remaining: remaining - 1,
                    };
                    // Chain nodes are found by following the bucket pointer.
                    return dependent_access(
                        0x0047_0000,
                        1,
                        block_to_addr(self.chain_region(), node),
                        AccessKind::Load,
                    );
                }
                KvState::Value { key, index, length } => {
                    if index >= length {
                        self.state = KvState::NextRequest;
                        continue;
                    }
                    let value_base = key * u64::from(self.value_blocks_max);
                    self.state = KvState::Value {
                        key,
                        index: index + 1,
                        length,
                    };
                    return access(
                        0x0047_0000,
                        2 + (index % 2),
                        self.value_region() + (value_base + u64::from(index)) * BLOCK_BYTES,
                        AccessKind::Load,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_follow_bucket_chain_value_shape() {
        let mut g = KeyValue::new(0, 256, 1024, 4, 0.9, 5);
        let a = g.next_access();
        assert!(a.block() < 256, "first access is a bucket load");
        // All accesses stay in the three regions.
        for _ in 0..2000 {
            let acc = g.next_access();
            assert!(acc.block() < 256 + 1024 + 256 * 4 + 16);
        }
    }

    #[test]
    fn skewed_keys_create_hot_buckets() {
        let mut g = KeyValue::new(0, 1 << 12, 1 << 12, 2, 1.2, 5);
        let mut bucket_counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            let acc = g.next_access();
            if acc.block() < (1 << 12) {
                *bucket_counts.entry(acc.block()).or_insert(0usize) += 1;
            }
        }
        let max = bucket_counts.values().copied().max().unwrap();
        assert!(max > 100, "no hot bucket: max {max}");
    }
}

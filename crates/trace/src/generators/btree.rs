//! B-tree index probe access pattern.

use rand::rngs::SmallRng;

use super::util::{access, block_to_addr, dependent_access, rng_from_seed, ZipfSampler};
use super::AccessPattern;
use crate::record::{AccessKind, MemoryAccess, BLOCK_BYTES};

/// Repeated root-to-leaf probes of a B-tree index.
///
/// Level `i` has an exponentially growing footprint; upper levels are hot
/// and should be retained, leaf levels are cold. The per-level PCs give
/// PC-based features a clean signal for "this load usually touches dead
/// blocks" (leaf loads) vs live blocks (root/inner loads). Models database
/// index probes and `xalancbmk`-style tree walking.
#[derive(Debug)]
pub struct BTreeProbe {
    region_base: u64,
    level_blocks: Vec<u64>,
    key_popularity: ZipfSampler,
    rng: SmallRng,
    level: usize,
    current_key: u64,
}

impl BTreeProbe {
    /// Creates the pattern; `level_blocks[i]` is the footprint (in blocks)
    /// of level `i` (root = level 0). Keys follow Zipf(`theta`).
    ///
    /// # Panics
    ///
    /// Panics if there are no levels or a level is empty.
    pub fn new(region_base: u64, level_blocks: Vec<u64>, theta: f64, seed: u64) -> Self {
        assert!(!level_blocks.is_empty(), "need at least one level");
        assert!(
            level_blocks.iter().all(|&b| b > 0),
            "levels must be nonzero"
        );
        let leaves = *level_blocks.last().expect("nonempty") as usize;
        BTreeProbe {
            region_base,
            level_blocks,
            key_popularity: ZipfSampler::new(leaves.min(1 << 18), theta),
            rng: rng_from_seed(seed),
            level: 0,
            current_key: 0,
        }
    }

    fn level_base(&self, level: usize) -> u64 {
        let blocks_before: u64 = self.level_blocks[..level].iter().sum();
        self.region_base + blocks_before * BLOCK_BYTES
    }
}

impl AccessPattern for BTreeProbe {
    fn next_access(&mut self) -> MemoryAccess {
        if self.level == 0 {
            self.current_key = self.key_popularity.sample(&mut self.rng) as u64;
        }
        let level = self.level;
        let blocks = self.level_blocks[level];
        // The node visited at each level is a deterministic function of the
        // key, as in a real tree descent.
        let node = self
            .current_key
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(level as u32 * 8)
            % blocks;
        self.level = (self.level + 1) % self.level_blocks.len();
        let addr = block_to_addr(self.level_base(level), node);
        if level == 0 {
            access(0x004c_0000, level as u32, addr, AccessKind::Load)
        } else {
            // Inner/leaf reads depend on the parent node's contents.
            dependent_access(0x004c_0000, level as u32, addr, AccessKind::Load)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_descends_levels_in_order() {
        let mut g = BTreeProbe::new(0, vec![1, 16, 256], 0.8, 11);
        let a = g.next_access();
        let b = g.next_access();
        let c = g.next_access();
        let d = g.next_access();
        assert!(a.block() < 1);
        assert!((1..17).contains(&b.block()));
        assert!((17..273).contains(&c.block()));
        assert!(d.block() < 1, "next probe restarts at root");
    }

    #[test]
    fn same_key_takes_same_path() {
        let mut g = BTreeProbe::new(0, vec![1, 8, 64], 5.0, 11);
        // Extreme skew: key 0 dominates, so paths repeat often.
        let mut paths = std::collections::HashSet::new();
        for _ in 0..100 {
            let path: Vec<u64> = (0..3).map(|_| g.next_access().block()).collect();
            paths.insert(path);
        }
        assert!(paths.len() < 30, "too many distinct paths: {}", paths.len());
    }
}

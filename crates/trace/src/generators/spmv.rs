//! Sparse matrix-vector product access pattern.

use rand::rngs::SmallRng;
use rand::Rng;

use super::util::{access, dependent_access, rng_from_seed};
use super::AccessPattern;
use crate::record::{AccessKind, MemoryAccess, BLOCK_BYTES};

/// CSR sparse matrix-vector multiply: `y = A * x`.
///
/// Three access classes with sharply different reuse: the row-pointer and
/// nonzero arrays stream (dead on arrival), while gathers into `x` are
/// random with reuse governed by the vector footprint. Models
/// `graph_analytics` / scientific-solver behavior.
#[derive(Debug)]
pub struct SparseMatrix {
    region_base: u64,
    rows: u64,
    nnz_per_row_max: u32,
    vector_blocks: u64,
    rng: SmallRng,
    row: u64,
    nnz_left: u32,
    nnz_cursor: u64,
    state: SpmvState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpmvState {
    RowPointer,
    Nonzero,
    Gather,
    Accumulate,
}

impl SparseMatrix {
    /// Creates the pattern: `rows` matrix rows with up to `nnz_per_row_max`
    /// nonzeros each, gathering from a vector of `vector_blocks` blocks.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(
        region_base: u64,
        rows: u64,
        nnz_per_row_max: u32,
        vector_blocks: u64,
        seed: u64,
    ) -> Self {
        assert!(rows > 0 && nnz_per_row_max > 0 && vector_blocks > 0);
        SparseMatrix {
            region_base,
            rows,
            nnz_per_row_max,
            vector_blocks,
            rng: rng_from_seed(seed),
            row: 0,
            nnz_left: 0,
            nnz_cursor: 0,
            state: SpmvState::RowPointer,
        }
    }

    fn rowptr_region(&self) -> u64 {
        self.region_base
    }

    fn nnz_region(&self) -> u64 {
        // Row pointers: 8 bytes each.
        self.rowptr_region() + (self.rows * 8 / BLOCK_BYTES + 1) * BLOCK_BYTES
    }

    fn vector_region(&self) -> u64 {
        self.nnz_region()
            + (self.rows * u64::from(self.nnz_per_row_max) * 16 / BLOCK_BYTES + 1) * BLOCK_BYTES
    }

    fn output_region(&self) -> u64 {
        self.vector_region() + self.vector_blocks * BLOCK_BYTES
    }
}

impl AccessPattern for SparseMatrix {
    fn next_access(&mut self) -> MemoryAccess {
        match self.state {
            SpmvState::RowPointer => {
                let addr = self.rowptr_region() + self.row * 8;
                self.nnz_left = 1 + self.rng.gen_range(0..self.nnz_per_row_max);
                self.state = SpmvState::Nonzero;
                access(0x0048_0000, 0, addr, AccessKind::Load)
            }
            SpmvState::Nonzero => {
                let addr = self.nnz_region() + self.nnz_cursor * 16;
                self.nnz_cursor += 1;
                self.state = SpmvState::Gather;
                access(0x0048_0000, 1, addr, AccessKind::Load)
            }
            SpmvState::Gather => {
                let col = self.rng.gen_range(0..self.vector_blocks);
                self.nnz_left -= 1;
                self.state = if self.nnz_left == 0 {
                    SpmvState::Accumulate
                } else {
                    SpmvState::Nonzero
                };
                // The gather address comes from the just-loaded column index.
                dependent_access(
                    0x0048_0000,
                    2,
                    self.vector_region() + col * BLOCK_BYTES,
                    AccessKind::Load,
                )
            }
            SpmvState::Accumulate => {
                let addr = self.output_region() + self.row * 8;
                self.row = (self.row + 1) % self.rows;
                self.state = SpmvState::RowPointer;
                access(0x0048_0000, 3, addr, AccessKind::Store)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmv_cycles_through_phases() {
        let mut g = SparseMatrix::new(0, 64, 4, 1 << 10, 6);
        let first = g.next_access();
        assert_eq!(first.kind, AccessKind::Load);
        let mut saw_store = false;
        for _ in 0..200 {
            if g.next_access().kind == AccessKind::Store {
                saw_store = true;
            }
        }
        assert!(saw_store, "accumulate stores never appeared");
    }

    #[test]
    fn spmv_regions_are_disjoint() {
        let g = SparseMatrix::new(0, 64, 4, 1 << 10, 6);
        assert!(g.rowptr_region() < g.nnz_region());
        assert!(g.nnz_region() < g.vector_region());
        assert!(g.vector_region() < g.output_region());
    }

    #[test]
    fn spmv_gathers_hit_vector_region() {
        let mut g = SparseMatrix::new(0, 64, 4, 256, 6);
        let vec_base = g.vector_region();
        let out_base = g.output_region();
        let mut gathered = 0;
        for _ in 0..1000 {
            let a = g.next_access();
            if a.address >= vec_base && a.address < out_base {
                gathered += 1;
            }
        }
        assert!(gathered > 100, "gathers: {gathered}");
    }
}

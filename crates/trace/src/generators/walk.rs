//! Gaussian random walk through an address region.

use rand::rngs::SmallRng;
use rand::Rng;

use super::util::{access, rng_from_seed};
use super::AccessPattern;
use crate::record::{AccessKind, MemoryAccess, BLOCK_BYTES};

/// A random walk whose stride is approximately Gaussian.
///
/// Models locality that decays smoothly with distance (scientific stencil
/// codes, simulated-annealing style workloads): nearby blocks are revisited
/// soon, distant ones rarely, producing a continuous spectrum of reuse
/// distances rather than the step functions of loops and streams.
#[derive(Debug)]
pub struct GaussianWalk {
    region_base: u64,
    footprint_blocks: u64,
    sigma_blocks: f64,
    position: f64,
    rng: SmallRng,
}

impl GaussianWalk {
    /// Creates a walk over `footprint_blocks` blocks with per-step standard
    /// deviation `sigma_blocks`.
    ///
    /// # Panics
    ///
    /// Panics if `footprint_blocks == 0` or `sigma_blocks <= 0.0`.
    pub fn new(region_base: u64, footprint_blocks: u64, sigma_blocks: f64, seed: u64) -> Self {
        assert!(footprint_blocks > 0, "footprint must be nonzero");
        assert!(sigma_blocks > 0.0, "sigma must be positive");
        GaussianWalk {
            region_base,
            footprint_blocks,
            sigma_blocks,
            position: footprint_blocks as f64 / 2.0,
            rng: rng_from_seed(seed),
        }
    }

    /// Approximate standard normal via the sum of uniforms (Irwin–Hall);
    /// avoids pulling in a distributions dependency.
    fn standard_normal(&mut self) -> f64 {
        let sum: f64 = (0..12).map(|_| self.rng.gen::<f64>()).sum();
        sum - 6.0
    }
}

impl AccessPattern for GaussianWalk {
    fn next_access(&mut self) -> MemoryAccess {
        let step = self.standard_normal() * self.sigma_blocks;
        self.position += step;
        let n = self.footprint_blocks as f64;
        // Reflect at the region boundaries.
        while self.position < 0.0 || self.position >= n {
            if self.position < 0.0 {
                self.position = -self.position;
            }
            if self.position >= n {
                self.position = 2.0 * n - self.position - 1.0;
            }
        }
        let block = self.position as u64;
        let site = (block % 3) as u32;
        access(
            0x0044_0000,
            site,
            self.region_base + block * BLOCK_BYTES,
            AccessKind::Load,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_stays_in_region() {
        let blocks = 1u64 << 12;
        let mut w = GaussianWalk::new(0, blocks, 64.0, 8);
        for _ in 0..10_000 {
            assert!(w.next_access().block() < blocks);
        }
    }

    #[test]
    fn walk_moves_locally() {
        let mut w = GaussianWalk::new(0, 1 << 16, 4.0, 8);
        let a = w.next_access().block() as i64;
        let b = w.next_access().block() as i64;
        assert!((a - b).abs() < 64, "step too large: {a} -> {b}");
    }

    #[test]
    fn walk_eventually_covers_distance() {
        let mut w = GaussianWalk::new(0, 1 << 10, 16.0, 8);
        let start = w.next_access().block() as i64;
        let mut max_excursion = 0i64;
        for _ in 0..5_000 {
            let p = w.next_access().block() as i64;
            max_excursion = max_excursion.max((p - start).abs());
        }
        assert!(max_excursion > 100, "walk never strayed: {max_excursion}");
    }
}

//! Call-stack push/pop access pattern.

use rand::rngs::SmallRng;
use rand::Rng;

use super::util::{access, rng_from_seed};
use super::AccessPattern;
#[cfg(test)]
use crate::record::BLOCK_BYTES;
use crate::record::{AccessKind, MemoryAccess};

/// A random-walk call stack: frames are pushed (stores) and popped (loads)
/// near the top of a stack region.
///
/// Models recursion-heavy integer codes (`leela`, `xz`-style): accesses
/// concentrate near the stack top with excellent recency locality but
/// occasional deep excursions, exercising the `burst` feature (repeated
/// MRU-block hits).
#[derive(Debug)]
pub struct StackPattern {
    region_base: u64,
    max_depth_frames: u64,
    frame_bytes: u64,
    depth: u64,
    rng: SmallRng,
}

impl StackPattern {
    /// Creates the pattern with at most `max_depth_frames` frames of
    /// `frame_bytes` bytes each.
    ///
    /// # Panics
    ///
    /// Panics if `max_depth_frames == 0` or `frame_bytes == 0`.
    pub fn new(region_base: u64, max_depth_frames: u64, frame_bytes: u64, seed: u64) -> Self {
        assert!(max_depth_frames > 0 && frame_bytes > 0);
        StackPattern {
            region_base,
            max_depth_frames,
            frame_bytes,
            depth: 0,
            rng: rng_from_seed(seed),
        }
    }
}

impl AccessPattern for StackPattern {
    fn next_access(&mut self) -> MemoryAccess {
        let push = self.rng.gen_bool(0.5);
        if push && self.depth + 1 < self.max_depth_frames {
            self.depth += 1;
            let addr = self.region_base + self.depth * self.frame_bytes;
            access(0x0049_0000, 0, addr, AccessKind::Store)
        } else if self.depth > 0 {
            let addr = self.region_base + self.depth * self.frame_bytes + 8;
            self.depth -= 1;
            access(0x0049_0000, 1, addr, AccessKind::Load)
        } else {
            self.depth += 1;
            let addr = self.region_base + self.depth * self.frame_bytes;
            access(0x0049_0000, 0, addr, AccessKind::Store)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_stays_within_region() {
        let frames = 1u64 << 10;
        let frame_bytes = 2 * BLOCK_BYTES;
        let mut g = StackPattern::new(0, frames, frame_bytes, 7);
        for _ in 0..10_000 {
            let a = g.next_access();
            assert!(a.address < frames * frame_bytes + frame_bytes);
        }
    }

    #[test]
    fn stack_has_tight_locality() {
        let mut g = StackPattern::new(0, 1 << 12, BLOCK_BYTES, 7);
        let mut prev = g.next_access().block() as i64;
        let mut total_jump = 0i64;
        const N: i64 = 5000;
        for _ in 0..N {
            let b = g.next_access().block() as i64;
            total_jump += (b - prev).abs();
            prev = b;
        }
        assert!(total_jump / N <= 2, "average jump too large");
    }

    #[test]
    fn pushes_are_stores_pops_are_loads() {
        let mut g = StackPattern::new(0, 64, BLOCK_BYTES, 7);
        for _ in 0..200 {
            let a = g.next_access();
            match a.kind {
                AccessKind::Store => assert_eq!(a.address % BLOCK_BYTES, 0),
                AccessKind::Load => assert_eq!(a.address % BLOCK_BYTES, 8),
            }
        }
    }
}

//! Mixture of a hot working set and a cold scan.

use rand::rngs::SmallRng;
use rand::Rng;

use super::util::{access, block_to_addr, rng_from_seed};
use super::AccessPattern;
use crate::record::{AccessKind, MemoryAccess};

/// Interleaves accesses to a small hot set with a cold streaming scan.
///
/// This is the canonical motivating pattern for dead-block bypass: the scan
/// blocks are dead on arrival and, under LRU, continually evict the hot set.
/// A good reuse predictor bypasses the scan and keeps the hot set resident.
/// Distinct PCs are used for the hot and scan sites, giving PC-based
/// features a clean signal.
///
/// The hot set is walked in a fixed random permutation (an irregular
/// data-structure layout), so a stream prefetcher cannot hide its misses;
/// the scan remains sequential and prefetchable, as scans are.
#[derive(Debug)]
pub struct ScanHot {
    region_base: u64,
    hot_order: Vec<u32>,
    scan_blocks: u64,
    hot_probability: f64,
    hot_cursor: u64,
    scan_cursor: u64,
    rng: SmallRng,
}

impl ScanHot {
    /// Creates the mixture: with probability `hot_probability` the next
    /// access walks the hot set (sequentially), otherwise it advances the
    /// cold scan.
    ///
    /// # Panics
    ///
    /// Panics if either working set is empty or the probability is outside
    /// `[0, 1]`.
    pub fn new(
        region_base: u64,
        hot_blocks: u64,
        scan_blocks: u64,
        hot_probability: f64,
        seed: u64,
    ) -> Self {
        assert!(
            hot_blocks > 0 && scan_blocks > 0,
            "working sets must be nonzero"
        );
        assert!(hot_blocks <= u64::from(u32::MAX), "hot set too large");
        assert!(
            (0.0..=1.0).contains(&hot_probability),
            "probability out of range"
        );
        let mut rng = rng_from_seed(seed);
        let mut hot_order: Vec<u32> = (0..hot_blocks as u32).collect();
        use rand::seq::SliceRandom;
        hot_order.shuffle(&mut rng);
        ScanHot {
            region_base,
            hot_order,
            scan_blocks,
            hot_probability,
            hot_cursor: 0,
            scan_cursor: 0,
            rng,
        }
    }

    fn hot_blocks(&self) -> u64 {
        self.hot_order.len() as u64
    }
}

impl AccessPattern for ScanHot {
    fn next_access(&mut self) -> MemoryAccess {
        if self.rng.gen::<f64>() < self.hot_probability {
            let block = u64::from(self.hot_order[self.hot_cursor as usize]);
            self.hot_cursor = (self.hot_cursor + 1) % self.hot_blocks();
            access(
                0x0045_0000,
                (block % 3) as u32,
                block_to_addr(self.region_base, block),
                AccessKind::Load,
            )
        } else {
            let block = self.scan_cursor;
            self.scan_cursor = (self.scan_cursor + 1) % self.scan_blocks;
            // Scan region sits above the hot region.
            let scan_base = self.region_base + self.hot_blocks() * crate::record::BLOCK_BYTES;
            access(
                0x0045_1000,
                8 + (block % 2) as u32,
                block_to_addr(scan_base, block),
                AccessKind::Load,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_and_scan_use_disjoint_regions_and_pcs() {
        let mut g = ScanHot::new(0, 64, 1 << 16, 0.5, 2);
        let mut hot_pcs = std::collections::HashSet::new();
        let mut scan_pcs = std::collections::HashSet::new();
        for _ in 0..1000 {
            let a = g.next_access();
            if a.block() < 64 {
                hot_pcs.insert(a.pc);
            } else {
                scan_pcs.insert(a.pc);
            }
        }
        assert!(!hot_pcs.is_empty() && !scan_pcs.is_empty());
        assert!(hot_pcs.is_disjoint(&scan_pcs));
    }

    #[test]
    fn probability_one_is_all_hot() {
        let mut g = ScanHot::new(0, 16, 1 << 16, 1.0, 2);
        for _ in 0..100 {
            assert!(g.next_access().block() < 16);
        }
    }

    #[test]
    fn probability_zero_is_all_scan() {
        let mut g = ScanHot::new(0, 16, 1 << 10, 0.0, 2);
        for _ in 0..100 {
            assert!(g.next_access().block() >= 16);
        }
    }
}

//! Object/field access pattern with meaningful block offsets.

use rand::rngs::SmallRng;
use rand::Rng;

use super::util::{access, rng_from_seed, ZipfSampler};
use super::AccessPattern;
use crate::record::{AccessKind, MemoryAccess, BLOCK_BYTES};

/// Field dereferencing over a heap of fixed-layout objects.
///
/// Models compiler/interpreter-style code (`gcc` is the paper's example for
/// the `offset` feature): each visit picks an object and touches a subset of
/// its fields at fixed byte offsets. Because field offsets repeat across
/// objects, the *block offset* of an access carries reuse information —
/// exactly the signal the paper's `offset(A, B, E, X)` feature exploits.
#[derive(Debug)]
pub struct FieldAccess {
    region_base: u64,
    num_objects: u64,
    object_bytes: u64,
    field_offsets: Vec<u16>,
    popularity: ZipfSampler,
    scatter: u64,
    rng: SmallRng,
    current_object: u64,
    field_cursor: usize,
    fields_this_visit: usize,
}

impl FieldAccess {
    /// Creates the pattern: `num_objects` objects of `object_bytes` bytes,
    /// each visit touching a prefix of `field_offsets` (offsets in bytes
    /// from the object base). Object popularity is Zipf(`theta`).
    ///
    /// # Panics
    ///
    /// Panics if there are no objects or no fields, or if a field offset
    /// lies outside the object.
    pub fn new(
        region_base: u64,
        num_objects: u64,
        object_bytes: u64,
        field_offsets: Vec<u16>,
        theta: f64,
        seed: u64,
    ) -> Self {
        assert!(num_objects > 0, "need at least one object");
        assert!(!field_offsets.is_empty(), "need at least one field");
        assert!(
            field_offsets.iter().all(|&o| u64::from(o) < object_bytes),
            "field offset outside object"
        );
        let n = num_objects.min(1 << 18) as usize;
        FieldAccess {
            region_base,
            num_objects,
            object_bytes,
            field_offsets,
            popularity: ZipfSampler::new(n, theta),
            scatter: 0x2545_f491_4f6c_dd1d,
            rng: rng_from_seed(seed),
            current_object: 0,
            field_cursor: 0,
            fields_this_visit: 0,
        }
    }

    fn begin_visit(&mut self) {
        let rank = self.popularity.sample(&mut self.rng) as u64;
        self.current_object = rank.wrapping_mul(self.scatter) % self.num_objects;
        self.field_cursor = 0;
        self.fields_this_visit = 1 + self.rng.gen_range(0..self.field_offsets.len());
    }
}

impl AccessPattern for FieldAccess {
    fn next_access(&mut self) -> MemoryAccess {
        if self.field_cursor >= self.fields_this_visit {
            self.begin_visit();
        }
        if self.fields_this_visit == 0 {
            self.begin_visit();
        }
        let offset = u64::from(self.field_offsets[self.field_cursor]);
        let site = self.field_cursor as u32;
        self.field_cursor += 1;
        let addr = self.region_base + self.current_object * self.object_bytes + offset;
        access(0x0046_0000, site, addr, AccessKind::Load)
    }
}

/// Returns a typical object layout: header word, two pointer fields in the
/// first block, and payload fields in later blocks. Useful when building
/// custom [`FieldAccess`] workloads.
pub fn default_layout(object_bytes: u64) -> Vec<u16> {
    let mut fields = vec![0u16, 8, 24];
    let mut offset = BLOCK_BYTES;
    while offset + 16 < object_bytes && fields.len() < 8 {
        fields.push(offset as u16);
        fields.push((offset + 16) as u16);
        offset += 2 * BLOCK_BYTES;
    }
    fields.retain(|&o| u64::from(o) < object_bytes);
    fields
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_repeat_block_offsets_across_objects() {
        let mut g = FieldAccess::new(0, 1 << 12, 256, vec![0, 8, 72], 0.9, 3);
        let mut offsets = std::collections::HashSet::new();
        for _ in 0..3000 {
            offsets.insert(g.next_access().block_offset());
        }
        // Offsets 0, 8 land in block offset 0 and 8; 72 lands at 8 in the
        // second block. The distinct offset set stays tiny.
        assert!(offsets.len() <= 3, "offsets: {offsets:?}");
    }

    #[test]
    fn visit_touches_object_fields_in_order() {
        let offsets = vec![0u16, 64, 128];
        let mut g = FieldAccess::new(0, 4, 256, offsets.clone(), 0.0, 3);
        let mut prev_field: Option<usize> = None;
        for _ in 0..200 {
            let a = g.next_access();
            // After the call the generator state names the visit the access
            // belongs to: field_cursor - 1 is the field just touched.
            let field = g.field_cursor - 1;
            let expected = g.current_object * g.object_bytes + u64::from(offsets[field]);
            assert_eq!(a.address, expected, "access not at field {field}");
            match prev_field {
                // Within a visit fields advance in declaration order; a new
                // visit restarts at the first field.
                Some(p) => assert!(field == p + 1 || field == 0, "{p} -> {field}"),
                None => assert_eq!(field, 0, "first access must start a visit"),
            }
            prev_field = Some(field);
        }
    }

    #[test]
    fn default_layout_is_within_object() {
        for bytes in [64u64, 128, 256, 512] {
            let layout = default_layout(bytes);
            assert!(!layout.is_empty());
            assert!(layout.iter().all(|&o| u64::from(o) < bytes));
        }
    }

    #[test]
    #[should_panic(expected = "field offset outside object")]
    fn rejects_out_of_object_field() {
        let _ = FieldAccess::new(0, 4, 64, vec![100], 0.0, 3);
    }
}

//! Multi-stream merge access pattern.

use rand::rngs::SmallRng;
use rand::Rng;

use super::util::{access, rng_from_seed};
use super::AccessPattern;
use crate::record::{AccessKind, MemoryAccess, BLOCK_BYTES};

/// A k-way merge: several sequential input streams consumed at random
/// relative rates, plus a sequential output stream of stores.
///
/// Models external-sort / merge-join phases: every block is touched a
/// handful of times in quick succession (as elements within the block are
/// consumed) and is then dead — a friendly target for the stream prefetcher
/// and for dead-block bypass.
#[derive(Debug)]
pub struct Merge {
    region_base: u64,
    stream_blocks: u64,
    cursors: Vec<u64>,
    out_cursor: u64,
    rng: SmallRng,
    pending_store: bool,
    current_stream: usize,
    element_in_block: u8,
}

impl Merge {
    /// Creates a `streams`-way merge over inputs of `stream_blocks` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `streams == 0` or `stream_blocks == 0`.
    pub fn new(region_base: u64, streams: usize, stream_blocks: u64, seed: u64) -> Self {
        assert!(streams > 0 && stream_blocks > 0);
        Merge {
            region_base,
            stream_blocks,
            cursors: vec![0; streams],
            out_cursor: 0,
            rng: rng_from_seed(seed),
            pending_store: false,
            current_stream: 0,
            element_in_block: 0,
        }
    }

    fn stream_base(&self, s: usize) -> u64 {
        self.region_base + (s as u64) * self.stream_blocks * BLOCK_BYTES
    }

    fn output_base(&self) -> u64 {
        self.stream_base(self.cursors.len())
    }
}

impl AccessPattern for Merge {
    fn next_access(&mut self) -> MemoryAccess {
        if self.pending_store {
            self.pending_store = false;
            let addr = self.output_base() + self.out_cursor * 8;
            self.out_cursor = (self.out_cursor + 1) % (self.stream_blocks * 8);
            return access(0x004b_0000, 8, addr, AccessKind::Store);
        }
        // Pick the stream to advance; elements are 8 bytes, so 8 loads per
        // block before the cursor moves on.
        if self.element_in_block == 0 {
            self.current_stream = self.rng.gen_range(0..self.cursors.len());
        }
        let s = self.current_stream;
        let cursor = self.cursors[s];
        let addr =
            self.stream_base(s) + cursor * BLOCK_BYTES + u64::from(self.element_in_block) * 8;
        self.element_in_block += 1;
        if self.element_in_block == 8 {
            self.element_in_block = 0;
            self.cursors[s] = (cursor + 1) % self.stream_blocks;
        }
        self.pending_store = true;
        access(0x004b_0000, s as u32, addr, AccessKind::Load)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_alternates_load_store() {
        let mut g = Merge::new(0, 3, 1 << 10, 9);
        for _ in 0..100 {
            assert_eq!(g.next_access().kind, AccessKind::Load);
            assert_eq!(g.next_access().kind, AccessKind::Store);
        }
    }

    #[test]
    fn merge_consumes_blocks_fully_before_advancing() {
        let mut g = Merge::new(0, 1, 1 << 10, 9);
        let mut loads = Vec::new();
        for _ in 0..32 {
            loads.push(g.next_access());
            let _store = g.next_access();
        }
        // 8 loads in block 0, then 8 in block 1, ...
        assert_eq!(loads[0].block(), loads[7].block());
        assert_eq!(loads[8].block(), loads[0].block() + 1);
    }

    #[test]
    fn merge_streams_are_disjoint() {
        let g = Merge::new(0, 4, 128, 9);
        for s in 0..4 {
            assert_eq!(g.stream_base(s) % BLOCK_BYTES, 0);
        }
        assert!(g.output_base() > g.stream_base(3));
    }
}

//! Hash-table build phase access pattern.

use rand::rngs::SmallRng;
use rand::Rng;

use super::util::{access, rng_from_seed};
use super::AccessPattern;
use crate::record::{AccessKind, MemoryAccess, BLOCK_BYTES};

/// Random-scatter stores building a hash table, interleaved with sequential
/// input reads.
///
/// Models hash-join build / hash-aggregation phases: the input relation
/// streams (dead on arrival) while table updates scatter uniformly over a
/// footprint — writes with essentially no reuse when the table exceeds the
/// cache, and a read-modify-write pair per insert.
#[derive(Debug)]
pub struct HashBuild {
    region_base: u64,
    table_blocks: u64,
    input_blocks: u64,
    rng: SmallRng,
    input_cursor: u64,
    state: HbState,
    slot: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HbState {
    ReadInput,
    ProbeSlot,
    WriteSlot,
}

impl HashBuild {
    /// Creates the pattern with a table of `table_blocks` blocks and an
    /// input relation of `input_blocks` blocks (re-streamed cyclically).
    ///
    /// # Panics
    ///
    /// Panics if either footprint is zero.
    pub fn new(region_base: u64, table_blocks: u64, input_blocks: u64, seed: u64) -> Self {
        assert!(table_blocks > 0 && input_blocks > 0);
        HashBuild {
            region_base,
            table_blocks,
            input_blocks,
            rng: rng_from_seed(seed),
            input_cursor: 0,
            state: HbState::ReadInput,
            slot: 0,
        }
    }

    fn table_region(&self) -> u64 {
        self.region_base + self.input_blocks * BLOCK_BYTES
    }
}

impl AccessPattern for HashBuild {
    fn next_access(&mut self) -> MemoryAccess {
        match self.state {
            HbState::ReadInput => {
                let addr = self.region_base + self.input_cursor * 8;
                self.input_cursor = (self.input_cursor + 1) % (self.input_blocks * 8);
                self.slot = self.rng.gen_range(0..self.table_blocks);
                self.state = HbState::ProbeSlot;
                access(0x004e_0000, 0, addr, AccessKind::Load)
            }
            HbState::ProbeSlot => {
                self.state = HbState::WriteSlot;
                access(
                    0x004e_0000,
                    1,
                    self.table_region() + self.slot * BLOCK_BYTES,
                    AccessKind::Load,
                )
            }
            HbState::WriteSlot => {
                self.state = HbState::ReadInput;
                access(
                    0x004e_0000,
                    2,
                    self.table_region() + self.slot * BLOCK_BYTES + 8,
                    AccessKind::Store,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_and_write_touch_same_block() {
        let mut g = HashBuild::new(0, 1 << 12, 1 << 10, 17);
        for _ in 0..100 {
            let _input = g.next_access();
            let probe = g.next_access();
            let write = g.next_access();
            assert_eq!(probe.block(), write.block());
            assert_eq!(probe.kind, AccessKind::Load);
            assert_eq!(write.kind, AccessKind::Store);
        }
    }

    #[test]
    fn input_streams_sequentially() {
        let mut g = HashBuild::new(0, 64, 1 << 10, 17);
        let first = g.next_access();
        g.next_access();
        g.next_access();
        let second = g.next_access();
        assert_eq!(second.address, first.address + 8);
    }
}

//! Graph breadth-first traversal access pattern.

use rand::rngs::SmallRng;
use rand::Rng;

use super::util::{access, dependent_access, rng_from_seed};
use super::AccessPattern;
use crate::record::{AccessKind, MemoryAccess, BLOCK_BYTES};

/// Frontier-driven graph traversal: sequential frontier reads, sequential
/// edge-list reads, random neighbor-metadata gathers, and visited-bitmap
/// updates.
///
/// Models CloudSuite `graph_analytics`: a mix of streaming (frontier,
/// edges) and scattered (per-vertex data) accesses whose reuse depends on
/// community structure, approximated here with a locality knob that biases
/// neighbors toward nearby vertex ids.
#[derive(Debug)]
pub struct GraphBfs {
    region_base: u64,
    vertices: u64,
    edges_per_vertex_max: u32,
    locality: f64,
    rng: SmallRng,
    frontier_cursor: u64,
    edge_cursor: u64,
    edges_left: u32,
    current_vertex: u64,
    state: BfsState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BfsState {
    Frontier,
    EdgeList,
    Neighbor,
    Visited,
}

impl GraphBfs {
    /// Creates the pattern over `vertices` vertices with up to
    /// `edges_per_vertex_max` edges each; `locality` in `[0,1]` is the
    /// probability that a neighbor is within a small window of the current
    /// vertex (community structure).
    ///
    /// # Panics
    ///
    /// Panics if `vertices == 0`, `edges_per_vertex_max == 0`, or
    /// `locality` is outside `[0, 1]`.
    pub fn new(
        region_base: u64,
        vertices: u64,
        edges_per_vertex_max: u32,
        locality: f64,
        seed: u64,
    ) -> Self {
        assert!(vertices > 0 && edges_per_vertex_max > 0);
        assert!((0.0..=1.0).contains(&locality));
        GraphBfs {
            region_base,
            vertices,
            edges_per_vertex_max,
            locality,
            rng: rng_from_seed(seed),
            frontier_cursor: 0,
            edge_cursor: 0,
            edges_left: 0,
            current_vertex: 0,
            state: BfsState::Frontier,
        }
    }

    fn frontier_region(&self) -> u64 {
        self.region_base
    }

    fn edge_region(&self) -> u64 {
        self.frontier_region() + (self.vertices * 8 / BLOCK_BYTES + 1) * BLOCK_BYTES
    }

    fn vertex_region(&self) -> u64 {
        self.edge_region()
            + (self.vertices * u64::from(self.edges_per_vertex_max) * 8 / BLOCK_BYTES + 1)
                * BLOCK_BYTES
    }

    fn visited_region(&self) -> u64 {
        self.vertex_region() + self.vertices * BLOCK_BYTES
    }
}

impl AccessPattern for GraphBfs {
    fn next_access(&mut self) -> MemoryAccess {
        match self.state {
            BfsState::Frontier => {
                let addr = self.frontier_region() + self.frontier_cursor * 8;
                self.current_vertex = self.frontier_cursor % self.vertices;
                self.frontier_cursor = (self.frontier_cursor + 1) % (self.vertices * 8);
                self.edges_left = 1 + self.rng.gen_range(0..self.edges_per_vertex_max);
                self.state = BfsState::EdgeList;
                access(0x004d_0000, 0, addr, AccessKind::Load)
            }
            BfsState::EdgeList => {
                let addr = self.edge_region() + self.edge_cursor * 8;
                self.edge_cursor += 1;
                self.state = BfsState::Neighbor;
                access(0x004d_0000, 1, addr, AccessKind::Load)
            }
            BfsState::Neighbor => {
                let neighbor = if self.rng.gen::<f64>() < self.locality {
                    let window = 64u64;
                    let lo = self.current_vertex.saturating_sub(window / 2);
                    (lo + self.rng.gen_range(0..window)) % self.vertices
                } else {
                    self.rng.gen_range(0..self.vertices)
                };
                self.current_vertex = neighbor;
                self.state = BfsState::Visited;
                // Neighbor metadata address comes from the edge-list load.
                dependent_access(
                    0x004d_0000,
                    2,
                    self.vertex_region() + neighbor * BLOCK_BYTES,
                    AccessKind::Load,
                )
            }
            BfsState::Visited => {
                let addr = self.visited_region() + self.current_vertex / 8;
                self.edges_left -= 1;
                self.state = if self.edges_left == 0 {
                    BfsState::Frontier
                } else {
                    BfsState::EdgeList
                };
                access(0x004d_0000, 3, addr, AccessKind::Store)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_regions_are_ordered() {
        let g = GraphBfs::new(0, 1 << 12, 8, 0.5, 13);
        assert!(g.frontier_region() < g.edge_region());
        assert!(g.edge_region() < g.vertex_region());
        assert!(g.vertex_region() < g.visited_region());
    }

    #[test]
    fn bfs_emits_all_four_access_classes() {
        let mut g = GraphBfs::new(0, 1 << 10, 4, 0.7, 13);
        let mut pcs = std::collections::HashSet::new();
        for _ in 0..200 {
            pcs.insert(g.next_access().pc);
        }
        assert_eq!(pcs.len(), 4);
    }

    #[test]
    fn high_locality_keeps_neighbors_close() {
        let mut g = GraphBfs::new(0, 1 << 16, 4, 1.0, 13);
        let vertex_base = g.vertex_region();
        let visited_base = g.visited_region();
        let mut prev: Option<i64> = None;
        let mut big_jumps = 0;
        let mut gathers = 0;
        for _ in 0..4000 {
            let a = g.next_access();
            if a.address >= vertex_base && a.address < visited_base {
                let v = ((a.address - vertex_base) / BLOCK_BYTES) as i64;
                gathers += 1;
                if let Some(p) = prev {
                    if (v - p).abs() > 128 && (v - p).abs() < (1 << 16) - 128 {
                        big_jumps += 1;
                    }
                }
                prev = Some(v);
            }
        }
        assert!(gathers > 100);
        assert!(big_jumps < gathers / 10, "{big_jumps}/{gathers} big jumps");
    }
}

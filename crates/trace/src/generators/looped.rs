//! Repeated loop over a fixed working set.

use rand::seq::SliceRandom;

use super::util::{access, block_to_addr, rng_from_seed};
use super::AccessPattern;
use crate::record::{AccessKind, MemoryAccess};

/// A loop repeatedly sweeping a working set of `blocks` cache blocks.
///
/// The cache behavior is a step function of capacity: if the working set
/// fits, every access after the first sweep hits; if it exceeds capacity by
/// even a little, LRU suffers its pathological 0% hit rate while
/// anti-thrashing policies (RRIP, MPPPB bypass) retain a useful fraction.
/// This is the key pattern separating reuse-predicting policies from LRU.
///
/// Iteration order is either sequential (stream-prefetcher friendly, like
/// a dense array sweep) or a fixed random permutation
/// ([`LoopPattern::new_permuted`]) modeling working sets laid out
/// irregularly in memory — same reuse distances, but invisible to a
/// stream prefetcher, so the replacement policy carries the load.
#[derive(Debug)]
pub struct LoopPattern {
    region_base: u64,
    order: LoopOrder,
    blocks: u64,
    cursor: u64,
    accesses_per_block: u32,
    phase: u32,
}

#[derive(Debug)]
enum LoopOrder {
    Sequential,
    Permuted(Vec<u32>),
}

impl LoopPattern {
    /// Creates a sequential loop over `blocks` blocks; each block is
    /// touched `accesses_per_block` times per iteration (modeling
    /// multi-word reads of the same line).
    ///
    /// # Panics
    ///
    /// Panics if `blocks == 0` or `accesses_per_block == 0`.
    pub fn new(region_base: u64, blocks: u64, accesses_per_block: u32) -> Self {
        assert!(blocks > 0, "loop working set must be nonzero");
        assert!(accesses_per_block > 0, "accesses_per_block must be nonzero");
        LoopPattern {
            region_base,
            order: LoopOrder::Sequential,
            blocks,
            cursor: 0,
            accesses_per_block,
            phase: 0,
        }
    }

    /// Creates a loop visiting the working set in a fixed random
    /// permutation derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `blocks == 0`, `blocks > u32::MAX`, or
    /// `accesses_per_block == 0`.
    pub fn new_permuted(region_base: u64, blocks: u64, accesses_per_block: u32, seed: u64) -> Self {
        assert!(blocks <= u64::from(u32::MAX), "loop too large to permute");
        let mut pattern = LoopPattern::new(region_base, blocks, accesses_per_block);
        let mut order: Vec<u32> = (0..blocks as u32).collect();
        order.shuffle(&mut rng_from_seed(seed));
        pattern.order = LoopOrder::Permuted(order);
        pattern
    }

    fn block_at(&self, cursor: u64) -> u64 {
        match &self.order {
            LoopOrder::Sequential => cursor,
            LoopOrder::Permuted(order) => u64::from(order[cursor as usize]),
        }
    }
}

impl AccessPattern for LoopPattern {
    fn next_access(&mut self) -> MemoryAccess {
        let block = self.block_at(self.cursor);
        let site = self.phase % self.accesses_per_block;
        self.phase += 1;
        if self.phase == self.accesses_per_block {
            self.phase = 0;
            self.cursor = (self.cursor + 1) % self.blocks;
        }
        access(
            0x0041_0000,
            site,
            block_to_addr(self.region_base, block),
            AccessKind::Load,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_revisits_same_blocks() {
        let mut l = LoopPattern::new(0, 16, 1);
        let first: Vec<u64> = (0..16).map(|_| l.next_access().block()).collect();
        let second: Vec<u64> = (0..16).map(|_| l.next_access().block()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn loop_touches_each_block_repeatedly() {
        let mut l = LoopPattern::new(0, 4, 3);
        let blocks: Vec<u64> = (0..6).map(|_| l.next_access().block()).collect();
        assert_eq!(blocks[0], blocks[1]);
        assert_eq!(blocks[1], blocks[2]);
        assert_ne!(blocks[2], blocks[3]);
    }

    #[test]
    fn loop_covers_whole_working_set() {
        let mut l = LoopPattern::new(0, 32, 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..32 {
            seen.insert(l.next_access().block());
        }
        assert_eq!(seen.len(), 32);
    }

    #[test]
    fn permuted_loop_covers_working_set_in_fixed_order() {
        let mut l = LoopPattern::new_permuted(0, 64, 1, 9);
        let first: Vec<u64> = (0..64).map(|_| l.next_access().block()).collect();
        let second: Vec<u64> = (0..64).map(|_| l.next_access().block()).collect();
        assert_eq!(first, second, "permutation must be fixed across sweeps");
        let seen: std::collections::HashSet<u64> = first.iter().copied().collect();
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn permuted_order_is_not_sequential() {
        let mut l = LoopPattern::new_permuted(0, 256, 1, 9);
        let blocks: Vec<i64> = (0..256).map(|_| l.next_access().block() as i64).collect();
        let sequential_steps = blocks
            .windows(2)
            .filter(|w| (w[1] - w[0]).abs() <= 1)
            .count();
        assert!(
            sequential_steps < 32,
            "{sequential_steps} near-unit strides"
        );
    }
}

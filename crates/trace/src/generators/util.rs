//! Shared helpers for generators: seeded RNG construction, site-PC
//! synthesis, and a Zipf sampler.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::record::{AccessKind, MemoryAccess, BLOCK_BYTES};

/// Builds the deterministic RNG used by all generators.
pub(crate) fn rng_from_seed(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Synthesizes the PC for access site `site` of a generator whose code
/// region starts at `pc_base`.
///
/// Real programs' memory-instruction PCs are scattered across roughly
/// bits 2..22 of the text segment (different functions, inlined call
/// sites), and PC-based predictor features extract arbitrary bit ranges.
/// Packing sites 4 bytes apart would leave all high PC bits constant and
/// blind such features, so sites are spread deterministically over a 1MB
/// code region instead.
#[inline]
pub(crate) fn site_pc(pc_base: u64, site: u32) -> u64 {
    let h = (u64::from(site) + 1)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(pc_base.rotate_left(17));
    pc_base + ((h >> 40) & 0xf_fffc)
}

/// Deterministic per-site non-memory instruction gap in `[2, 6]`.
///
/// Keeping the gap a function of the site (rather than random) makes traces
/// compact to regenerate and keeps instruction counts stable across policy
/// comparisons.
#[inline]
pub(crate) fn site_gap(site: u32) -> u8 {
    2 + (site % 5) as u8
}

/// Builds a [`MemoryAccess`] for a generator access site.
#[inline]
pub(crate) fn access(pc_base: u64, site: u32, address: u64, kind: AccessKind) -> MemoryAccess {
    MemoryAccess {
        pc: site_pc(pc_base, site),
        address,
        core: 0,
        kind,
        non_memory_before: site_gap(site),
        dependent: false,
    }
}

/// Like [`access`], but marks the record as address-dependent on the
/// previous access (serialized by the timing model).
#[inline]
pub(crate) fn dependent_access(
    pc_base: u64,
    site: u32,
    address: u64,
    kind: AccessKind,
) -> MemoryAccess {
    MemoryAccess {
        dependent: true,
        ..access(pc_base, site, address, kind)
    }
}

/// Converts a block index within a region to a byte address, with a
/// deterministic sub-block offset derived from the index so the `offset`
/// feature sees varied but correlated values.
#[inline]
pub(crate) fn block_to_addr(region_base: u64, block_index: u64) -> u64 {
    let offset = (block_index.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 59) & 0x38;
    region_base + block_index * BLOCK_BYTES + offset
}

/// A Zipf(θ) sampler over ranks `0..n` using an inverted-CDF table.
///
/// Rank 0 is the most popular item. The table costs `n` doubles; the suite
/// keeps `n ≤ 2^20`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` ranks with skew `theta` (0 = uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "ZipfSampler requires at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank as f64) + 1.0).powf(theta);
            cdf.push(total);
        }
        for value in &mut cdf {
            *value /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler has zero ranks (never true; see [`ZipfSampler::new`]).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let sampler = ZipfSampler::new(1024, 1.1);
        let mut rng = rng_from_seed(9);
        let mut low = 0usize;
        const DRAWS: usize = 20_000;
        for _ in 0..DRAWS {
            if sampler.sample(&mut rng) < 16 {
                low += 1;
            }
        }
        // With theta=1.1 the top 16 of 1024 ranks hold well over a third of
        // the mass; uniform would give ~1.6%.
        assert!(low > DRAWS / 3, "low-rank draws: {low}/{DRAWS}");
    }

    #[test]
    fn zipf_zero_theta_is_roughly_uniform() {
        let sampler = ZipfSampler::new(64, 0.0);
        let mut rng = rng_from_seed(10);
        let mut counts = [0usize; 64];
        for _ in 0..64_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        let (min, max) = counts
            .iter()
            .fold((usize::MAX, 0), |(lo, hi), &c| (lo.min(c), hi.max(c)));
        assert!(max < min * 2, "uniform sampler too skewed: {min}..{max}");
    }

    #[test]
    fn zipf_samples_stay_in_range() {
        let sampler = ZipfSampler::new(3, 2.0);
        let mut rng = rng_from_seed(11);
        for _ in 0..1000 {
            assert!(sampler.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_empty() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    fn block_to_addr_is_within_block() {
        for i in 0..1000u64 {
            let addr = block_to_addr(0x1000_0000, i);
            assert_eq!((addr - 0x1000_0000) / BLOCK_BYTES, i);
        }
    }

    #[test]
    fn site_pcs_are_distinct() {
        let a = site_pc(0x400000, 0);
        let b = site_pc(0x400000, 1);
        assert_ne!(a, b);
    }
}

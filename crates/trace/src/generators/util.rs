//! Shared helpers for generators: seeded RNG construction, site-PC
//! synthesis, and a Zipf sampler.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::record::{AccessKind, MemoryAccess, BLOCK_BYTES};

/// Builds the deterministic RNG used by all generators.
pub(crate) fn rng_from_seed(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Synthesizes the PC for access site `site` of a generator whose code
/// region starts at `pc_base`.
///
/// Real programs' memory-instruction PCs are scattered across roughly
/// bits 2..22 of the text segment (different functions, inlined call
/// sites), and PC-based predictor features extract arbitrary bit ranges.
/// Packing sites 4 bytes apart would leave all high PC bits constant and
/// blind such features, so sites are spread deterministically over a 1MB
/// code region instead.
#[inline]
pub(crate) fn site_pc(pc_base: u64, site: u32) -> u64 {
    let h = (u64::from(site) + 1)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(pc_base.rotate_left(17));
    pc_base + ((h >> 40) & 0xf_fffc)
}

/// Deterministic per-site non-memory instruction gap in `[2, 6]`.
///
/// Keeping the gap a function of the site (rather than random) makes traces
/// compact to regenerate and keeps instruction counts stable across policy
/// comparisons.
#[inline]
pub(crate) fn site_gap(site: u32) -> u8 {
    2 + (site % 5) as u8
}

/// Builds a [`MemoryAccess`] for a generator access site.
#[inline]
pub(crate) fn access(pc_base: u64, site: u32, address: u64, kind: AccessKind) -> MemoryAccess {
    MemoryAccess {
        pc: site_pc(pc_base, site),
        address,
        core: 0,
        kind,
        non_memory_before: site_gap(site),
        dependent: false,
    }
}

/// Like [`access`], but marks the record as address-dependent on the
/// previous access (serialized by the timing model).
#[inline]
pub(crate) fn dependent_access(
    pc_base: u64,
    site: u32,
    address: u64,
    kind: AccessKind,
) -> MemoryAccess {
    MemoryAccess {
        dependent: true,
        ..access(pc_base, site, address, kind)
    }
}

/// Converts a block index within a region to a byte address, with a
/// deterministic sub-block offset derived from the index so the `offset`
/// feature sees varied but correlated values.
#[inline]
pub(crate) fn block_to_addr(region_base: u64, block_index: u64) -> u64 {
    let offset = (block_index.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 59) & 0x38;
    region_base + block_index * BLOCK_BYTES + offset
}

/// A Zipf(θ) sampler over ranks `0..n` using an inverted-CDF table with a
/// bucketed guide index.
///
/// Rank 0 is the most popular item. The table costs `n` doubles plus a
/// `u32` guide entry per bucket; the suite keeps `n ≤ 2^20`. The guide
/// brackets each draw to a handful of adjacent CDF entries, so sampling is
/// O(1) expected instead of a full binary search over a multi-megabyte
/// table (which cache-misses on every probe level and dominated trace
/// generation for the large-footprint workloads).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    /// `guide[j]` is the first rank whose CDF value is `>= j / B` where
    /// `B = guide.len() - 1` is a power of two. A uniform draw `u` then
    /// lies in `cdf[guide[j] .. guide[j + 1]]` for `j = floor(u * B)`.
    guide: Vec<u32>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` ranks with skew `theta` (0 = uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "ZipfSampler requires at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank as f64) + 1.0).powf(theta);
            cdf.push(total);
        }
        for value in &mut cdf {
            *value /= total;
        }
        // One bucket per rank (power of two so `u * B` is exact — scaling
        // by 2^k only shifts the exponent — and `j / B` below is exact for
        // the same reason). Built in one pass: O(n + B).
        let buckets = n.next_power_of_two().min(1 << 20);
        let mut guide = Vec::with_capacity(buckets + 1);
        let mut rank = 0usize;
        for j in 0..=buckets {
            let threshold = j as f64 / buckets as f64;
            while rank < n && cdf[rank] < threshold {
                rank += 1;
            }
            guide.push(rank as u32);
        }
        ZipfSampler { cdf, guide }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler has zero ranks (never true; see [`ZipfSampler::new`]).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        self.sample_at(rng.gen())
    }

    /// The rank a uniform draw `u` in `[0, 1)` maps to, via the guide
    /// index.
    ///
    /// Returns exactly the rank [`ZipfSampler::rank_by_binary_search`]
    /// would: the CDF is strictly increasing, so the answer is the
    /// partition point of `cdf[i] < u`, and the guide bucket
    /// `[guide[j], guide[j+1]]` provably brackets it
    /// (`j / B <= u < (j + 1) / B`).
    pub fn sample_at(&self, u: f64) -> usize {
        let buckets = self.guide.len() - 1;
        let j = ((u * buckets as f64) as usize).min(buckets - 1);
        let lo = self.guide[j] as usize;
        let hi = self.guide[j + 1] as usize;
        let i = lo + self.cdf[lo..hi].partition_point(|&probe| probe < u);
        i.min(self.cdf.len() - 1)
    }

    /// Reference form of [`ZipfSampler::sample_at`]: a binary search over
    /// the whole CDF, with no guide acceleration. Kept for differential
    /// tests of the guided path.
    pub fn rank_by_binary_search(&self, u: f64) -> usize {
        let i = match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) | Err(i) => i,
        };
        i.min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let sampler = ZipfSampler::new(1024, 1.1);
        let mut rng = rng_from_seed(9);
        let mut low = 0usize;
        const DRAWS: usize = 20_000;
        for _ in 0..DRAWS {
            if sampler.sample(&mut rng) < 16 {
                low += 1;
            }
        }
        // With theta=1.1 the top 16 of 1024 ranks hold well over a third of
        // the mass; uniform would give ~1.6%.
        assert!(low > DRAWS / 3, "low-rank draws: {low}/{DRAWS}");
    }

    #[test]
    fn zipf_zero_theta_is_roughly_uniform() {
        let sampler = ZipfSampler::new(64, 0.0);
        let mut rng = rng_from_seed(10);
        let mut counts = [0usize; 64];
        for _ in 0..64_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        let (min, max) = counts
            .iter()
            .fold((usize::MAX, 0), |(lo, hi), &c| (lo.min(c), hi.max(c)));
        assert!(max < min * 2, "uniform sampler too skewed: {min}..{max}");
    }

    #[test]
    fn zipf_samples_stay_in_range() {
        let sampler = ZipfSampler::new(3, 2.0);
        let mut rng = rng_from_seed(11);
        for _ in 0..1000 {
            assert!(sampler.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_empty() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    fn guide_sample_matches_full_binary_search() {
        // The guide index is a pure accelerator: every draw must resolve
        // to the same rank a binary search over the whole CDF would find.
        for (n, theta) in [(1usize, 1.0), (7, 0.0), (1024, 1.2), (40_000, 0.6)] {
            let sampler = ZipfSampler::new(n, theta);
            let mut rng = rng_from_seed(42);
            for _ in 0..5_000 {
                let u: f64 = rng.gen();
                assert_eq!(
                    sampler.sample_at(u),
                    sampler.rank_by_binary_search(u),
                    "n={n} theta={theta} u={u}"
                );
            }
        }
    }

    #[test]
    fn guide_brackets_every_cdf_entry() {
        let sampler = ZipfSampler::new(513, 1.1);
        let buckets = sampler.guide.len() - 1;
        assert!(buckets.is_power_of_two());
        assert_eq!(sampler.guide[0], 0);
        // The final CDF entry is exactly 1.0, so the last guide entry
        // points at (or just before) it, never past the table.
        assert!(sampler.guide[buckets] as usize <= sampler.len());
        assert!(sampler.guide[buckets] as usize >= sampler.len() - 1);
        for w in sampler.guide.windows(2) {
            assert!(w[0] <= w[1], "guide must be monotone");
        }
    }

    #[test]
    fn block_to_addr_is_within_block() {
        for i in 0..1000u64 {
            let addr = block_to_addr(0x1000_0000, i);
            assert_eq!((addr - 0x1000_0000) / BLOCK_BYTES, i);
        }
    }

    #[test]
    fn site_pcs_are_distinct() {
        let a = site_pc(0x400000, 0);
        let b = site_pc(0x400000, 1);
        assert_ne!(a, b);
    }
}

//! Pointer-chasing over a random permutation.

use rand::seq::SliceRandom;

use super::util::{block_to_addr, dependent_access, rng_from_seed};
use super::AccessPattern;
use crate::record::{AccessKind, MemoryAccess};

/// Dependent pointer chasing through a random permutation cycle.
///
/// Models linked-data traversals (`mcf`, `omnetpp`-style): each load's
/// address is determined by the previous load, reuse distances equal the
/// footprint, and there is no spatial locality. When the footprint exceeds
/// the cache, nearly every access misses under any online policy; the value
/// for a reuse predictor is recognizing the blocks as dead so they can be
/// bypassed, protecting co-resident data.
#[derive(Debug)]
pub struct PointerChase {
    region_base: u64,
    permutation: Vec<u32>,
    position: u32,
    site_counter: u32,
    /// Block of the node we just chased into, for the payload access.
    pending_payload: Option<u64>,
}

impl PointerChase {
    /// Builds a chase over `blocks` blocks using a permutation derived from
    /// `seed`. The permutation is a single cycle so every block is visited.
    ///
    /// # Panics
    ///
    /// Panics if `blocks == 0` or `blocks > u32::MAX as u64`.
    pub fn new(region_base: u64, blocks: u64, seed: u64) -> Self {
        assert!(blocks > 0, "chase footprint must be nonzero");
        assert!(blocks <= u64::from(u32::MAX), "chase footprint too large");
        let n = blocks as u32;
        let mut rng = rng_from_seed(seed);
        // Sattolo's algorithm for a uniformly random single cycle.
        let mut order: Vec<u32> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut permutation = vec![0u32; n as usize];
        for i in 0..n as usize {
            let next = order[(i + 1) % n as usize];
            permutation[order[i] as usize] = next;
        }
        PointerChase {
            region_base,
            permutation,
            position: 0,
            site_counter: 0,
            pending_payload: None,
        }
    }

    /// Footprint in blocks.
    pub fn blocks(&self) -> u64 {
        self.permutation.len() as u64
    }
}

impl AccessPattern for PointerChase {
    fn next_access(&mut self) -> MemoryAccess {
        // After each pointer dereference, the node's payload field is
        // read (same block: an L1 hit), as a real list traversal does.
        if let Some(block) = self.pending_payload.take() {
            // The payload read depends on the pointer load's data, so the
            // serialization chain threads through it.
            let mut payload = super::util::dependent_access(
                0x0042_0000,
                2,
                block_to_addr(self.region_base, block) + 8,
                AccessKind::Load,
            );
            payload.non_memory_before = 5;
            return payload;
        }
        let block = u64::from(self.position);
        self.position = self.permutation[self.position as usize];
        self.pending_payload = Some(block);
        // Two alternating chase sites, as in an unrolled traversal loop.
        let site = self.site_counter & 1;
        self.site_counter = self.site_counter.wrapping_add(1);
        dependent_access(
            0x0042_0000,
            site,
            block_to_addr(self.region_base, block),
            AccessKind::Load,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Collects the next `n` *pointer* accesses (skipping payload reads,
    /// which use the third site PC).
    fn pointer_blocks(c: &mut PointerChase, n: u64) -> Vec<u64> {
        let payload_pc = super::super::util::site_pc(0x0042_0000, 2);
        let mut out = Vec::new();
        while out.len() < n as usize {
            let a = c.next_access();
            if a.pc != payload_pc {
                out.push(a.block());
            }
        }
        out
    }

    #[test]
    fn chase_visits_every_block_once_per_cycle() {
        let n = 257u64;
        let mut c = PointerChase::new(0, n, 3);
        let blocks = pointer_blocks(&mut c, n);
        let seen: HashSet<u64> = blocks.iter().copied().collect();
        assert_eq!(seen.len(), n as usize, "revisit before cycle end");
    }

    #[test]
    fn chase_cycle_repeats() {
        let n = 64u64;
        let mut c = PointerChase::new(0, n, 3);
        let first = pointer_blocks(&mut c, n);
        let second = pointer_blocks(&mut c, n);
        assert_eq!(first, second);
    }

    #[test]
    fn payload_follows_pointer_in_same_block() {
        let mut c = PointerChase::new(0, 64, 3);
        let pointer = c.next_access();
        let payload = c.next_access();
        assert!(pointer.dependent);
        assert!(payload.dependent);
        assert_ne!(pointer.pc, payload.pc);
        assert_eq!(pointer.block(), payload.block());
    }

    #[test]
    fn chase_is_deterministic_per_seed() {
        let mut a = PointerChase::new(0, 128, 5);
        let mut b = PointerChase::new(0, 128, 5);
        for _ in 0..256 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn different_seeds_give_different_orders() {
        let mut a = PointerChase::new(0, 1024, 5);
        let mut b = PointerChase::new(0, 1024, 6);
        let ta: Vec<u64> = (0..64).map(|_| a.next_access().block()).collect();
        let tb: Vec<u64> = (0..64).map(|_| b.next_access().block()).collect();
        assert_ne!(ta, tb);
    }
}

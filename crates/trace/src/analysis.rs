//! Trace characterization: footprints, PC diversity, and block reuse
//! distances.
//!
//! Used to validate that the synthetic suite spans the locality regimes
//! the paper's workloads cover (the `workload_census` example prints the
//! census), and by tests asserting diversity invariants.

use std::collections::HashMap;

use crate::record::MemoryAccess;

/// Summary statistics of a trace prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProfile {
    /// Accesses analyzed.
    pub accesses: u64,
    /// Instructions represented (memory + non-memory).
    pub instructions: u64,
    /// Distinct 64B blocks touched.
    pub footprint_blocks: u64,
    /// Distinct memory-instruction PCs.
    pub distinct_pcs: u64,
    /// Fraction of accesses that are stores.
    pub store_fraction: f64,
    /// Fraction of accesses flagged address-dependent.
    pub dependent_fraction: f64,
    /// Histogram of log2(block reuse distance): bucket `i` counts reuses
    /// with `2^i <= distance < 2^(i+1)` measured in *distinct blocks*
    /// touched since the previous access to the block. Bucket 0 also
    /// holds distance-0/1 reuses; the last bucket holds everything
    /// larger. Cold (first-touch) accesses are not counted.
    pub reuse_log2_histogram: Vec<u64>,
}

/// Number of log2 buckets in the reuse histogram (covers distances up to
/// 2^23 blocks = 512MB of distinct data).
pub const REUSE_BUCKETS: usize = 24;

impl TraceProfile {
    /// Fraction of reuses with distance below `2^log2_bound`.
    pub fn reuse_below(&self, log2_bound: usize) -> f64 {
        let total: u64 = self.reuse_log2_histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let below: u64 = self.reuse_log2_histogram[..log2_bound.min(REUSE_BUCKETS)]
            .iter()
            .sum();
        below as f64 / total as f64
    }

    /// Footprint in mebibytes.
    pub fn footprint_mib(&self) -> f64 {
        self.footprint_blocks as f64 * 64.0 / (1024.0 * 1024.0)
    }
}

/// Analyzes the first `accesses` records of a trace.
///
/// Reuse distance is approximated with a timestamp + "distinct blocks
/// since" structure over a sliding epoch counter: exact stack distances
/// cost O(n log n); this uses the standard approximation of counting
/// distinct blocks via per-block last-access indices and a rolling
/// estimate, which is exact for distances below the epoch granularity.
pub fn profile<I: Iterator<Item = MemoryAccess>>(trace: I, accesses: u64) -> TraceProfile {
    let mut last_touch: HashMap<u64, u64> = HashMap::new();
    let mut pcs: HashMap<u64, u64> = HashMap::new();
    let mut histogram = vec![0u64; REUSE_BUCKETS];
    let mut stores = 0u64;
    let mut dependents = 0u64;
    let mut instructions = 0u64;
    // `order[i]` is the i-th distinct-block-touch counter: we count a
    // block's reuse distance as the number of *unique block touches*
    // between consecutive accesses, approximated by first-touch ordering.
    let mut unique_counter = 0u64;
    let mut analyzed = 0u64;

    for access in trace.take(accesses as usize) {
        analyzed += 1;
        instructions += access.instructions();
        if access.kind == crate::record::AccessKind::Store {
            stores += 1;
        }
        if access.dependent {
            dependents += 1;
        }
        *pcs.entry(access.pc).or_default() += 1;
        let block = access.block();
        match last_touch.insert(block, unique_counter) {
            Some(previous) => {
                let distance = unique_counter - previous;
                let bucket = (64 - u64::leading_zeros(distance.max(1)) - 1) as usize;
                histogram[bucket.min(REUSE_BUCKETS - 1)] += 1;
            }
            None => {
                unique_counter += 1;
            }
        }
    }

    TraceProfile {
        accesses: analyzed,
        instructions,
        footprint_blocks: last_touch.len() as u64,
        distinct_pcs: pcs.len() as u64,
        store_fraction: if analyzed == 0 {
            0.0
        } else {
            stores as f64 / analyzed as f64
        },
        dependent_fraction: if analyzed == 0 {
            0.0
        } else {
            dependents as f64 / analyzed as f64
        },
        reuse_log2_histogram: histogram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn loop_profile_shows_fixed_footprint_and_tight_reuse() {
        let w = &workloads::suite()[3]; // loop.fit: 1MB loop
        let p = profile(w.trace(1), 80_000);
        // 1MB = 16384 blocks.
        assert!(p.footprint_blocks <= 16_384 + 8, "{}", p.footprint_blocks);
        // After the first sweep every access reuses at distance ~footprint.
        let total: u64 = p.reuse_log2_histogram.iter().sum();
        assert!(total > 40_000);
    }

    #[test]
    fn stream_profile_shows_no_reuse() {
        let w = &workloads::suite()[0]; // stream.far: 64MB
        let p = profile(w.trace(1), 50_000);
        let reuses: u64 = p.reuse_log2_histogram.iter().sum();
        assert_eq!(reuses, 0, "pure stream should have no block reuse");
        assert!(p.footprint_blocks >= 49_000);
    }

    #[test]
    fn chase_profile_is_dependent_heavy() {
        let w = &workloads::suite()[9]; // chase.16m
        let p = profile(w.trace(1), 20_000);
        assert!(p.dependent_fraction > 0.9, "{}", p.dependent_fraction);
    }

    #[test]
    fn suite_spans_diverse_footprints() {
        // 60K accesses can touch at most ~3.7MiB of distinct blocks, so
        // "large" here means the footprint keeps growing with the window
        // (thrashing), while "small" means it has converged well under
        // the 2MB LLC.
        let suite = workloads::suite();
        let mut small = 0;
        let mut large = 0;
        for w in &suite {
            let p = profile(w.trace(1), 60_000);
            if p.footprint_mib() < 1.5 {
                small += 1;
            }
            if p.footprint_mib() > 2.5 {
                large += 1;
            }
        }
        assert!(small >= 3, "suite needs cache-resident members: {small}");
        assert!(large >= 8, "suite needs thrashing members: {large}");
    }

    #[test]
    fn store_fraction_reflects_generator() {
        let suite = workloads::suite();
        let rw = profile(suite[2].trace(1), 20_000); // stream.rw: 50% stores
        assert!((rw.store_fraction - 0.5).abs() < 0.05);
        let ro = profile(suite[3].trace(1), 20_000); // loop.fit: loads only
        assert_eq!(ro.store_fraction, 0.0);
    }

    #[test]
    fn reuse_below_is_cumulative() {
        let w = &workloads::suite()[3];
        let p = profile(w.trace(1), 60_000);
        assert!(p.reuse_below(24) <= 1.0 + 1e-9);
        assert!(p.reuse_below(0) <= p.reuse_below(24));
    }
}

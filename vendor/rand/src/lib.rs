//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses (see `vendor/README.md` for why it exists and what it covers).
//!
//! The generators are deterministic xoshiro256++ streams seeded through
//! splitmix64 — statistically solid for workload synthesis and seeded
//! search, but **not** the upstream algorithms: streams differ from real
//! `rand`, and nothing here is cryptographic. All workspace consumers
//! seed explicitly (`seed_from_u64`), so determinism per seed is the only
//! contract, and golden results are re-anchored against these streams.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types a generator can produce "standard" values of (the stand-in for
/// `Standard: Distribution<T>`).
pub trait StandardValue: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardValue for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardValue for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardValue for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardValue for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator methods, blanket-implemented for every
/// [`RngCore`] like upstream.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        f64::from_rng(self) < p
    }

    fn gen<T: StandardValue>(&mut self) -> T {
        T::from_rng(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Explicit-seed construction.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // splitmix64-expand the u64 into the full seed, as upstream does.
        let mut sm = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256++ core shared by [`rngs::SmallRng`] and [`rngs::StdRng`].
#[derive(Debug, Clone)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_seed_bytes(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, lane) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *lane = u64::from_le_bytes(b);
        }
        if s == [0; 4] {
            s = [0x9e3779b97f4a7c15, 0x6a09e667f3bcc909, 0xbb67ae8584caa73b, 0x3c6ef372fe94f82b];
        }
        Xoshiro256 { s }
    }

    fn next(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Small, fast generator (xoshiro256++ here; upstream's is
    /// platform-dependent, so streams differ by design).
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            SmallRng(Xoshiro256::from_seed_bytes(seed))
        }
    }

    /// "Standard" generator. Upstream's is ChaCha12; this stand-in uses
    /// the same xoshiro core as [`SmallRng`] with a domain-separated
    /// seed so the two never produce identical streams from one seed.
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(mut seed: [u8; 32]) -> Self {
            seed[0] ^= 0x5a;
            StdRng(Xoshiro256::from_seed_bytes(seed))
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (Fisher–Yates shuffle and uniform choice).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..17);
            assert!((-5..17).contains(&v));
            let w = rng.gen_range(3u8..=9);
            assert!((3..=9).contains(&w));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_covers_full_span() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn std_and_small_streams_differ() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = SmallRng::seed_from_u64(5);
        let same = (0..16)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert!(same < 16);
    }
}

//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace uses (see `vendor/README.md`).
//!
//! Implements the same programming model — composable [`Strategy`]
//! values, the [`proptest!`] test macro, `prop_assert*` soft assertions —
//! with a deterministic splitmix64 case generator. Differences from
//! upstream: no shrinking (a failing case panics with its seed and case
//! number so it can be replayed), and value distributions are plain
//! uniform. Case count defaults to 256 like upstream and follows
//! `PROPTEST_CASES`.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving every strategy during a test run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A failed `prop_assert*` inside a [`proptest!`] body.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Number of cases each [`proptest!`] test runs (`PROPTEST_CASES`
/// overrides the upstream-matching default of 256).
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(256)
}

/// Per-test seed: stable across runs, distinct across test names, and
/// overridable for replaying a failure (`PROPTEST_SEED`).
pub fn test_seed(name: &str) -> u64 {
    if let Ok(v) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = v.parse() {
            return seed;
        }
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A generator of test values. `generate` takes `&self` so one strategy
/// value can drive many cases.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// [`Strategy::prop_filter`] adapter (rejection sampling, bounded).
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive values: {}", self.whence);
    }
}

/// A strategy producing one fixed value (upstream's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — uniform over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a half-open
    /// range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                min: *r.start(),
                max_exclusive: r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, Strategy, TestCaseError, TestRng};
}

/// Soft assertion inside a [`proptest!`] body: fails the current case
/// (with formatted context) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Soft equality assertion; the default message shows both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left), stringify!($right), left, right, format!($($fmt)*)
        );
    }};
}

/// Soft inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running [`case_count`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = $crate::case_count();
            let seed = $crate::test_seed(stringify!($name));
            let mut rng = $crate::TestRng::new(seed);
            for case in 0..cases {
                let mut one_case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                    $body
                    ::std::result::Result::Ok(())
                };
                if let ::std::result::Result::Err(err) = one_case() {
                    panic!(
                        "proptest case {case}/{cases} failed (replay with \
                         PROPTEST_SEED={seed}):\n{err}"
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 3u8..=9, w in -5i32..17, n in 1usize..50) {
            prop_assert!((3..=9).contains(&v));
            prop_assert!((-5..17).contains(&w));
            prop_assert!((1..50).contains(&n));
        }

        #[test]
        fn vec_lengths_follow_size_range(
            xs in crate::collection::vec(any::<u64>(), 2..7),
            fixed in crate::collection::vec(any::<bool>(), 4),
        ) {
            prop_assert!((2..7).contains(&xs.len()));
            prop_assert_eq!(fixed.len(), 4);
        }

        #[test]
        fn prop_map_composes(even in (0u32..100).prop_map(|v| v * 2)) {
            prop_assert!(even % 2 == 0, "{} not even", even);
        }

        #[test]
        fn tuples_generate_componentwise(pair in (1u8..=18, any::<bool>())) {
            prop_assert!((1..=18).contains(&pair.0));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = crate::collection::vec(0u64..1000, 1..20);
        let a: Vec<Vec<u64>> = {
            let mut rng = TestRng::new(99);
            (0..10).map(|_| strat.generate(&mut rng)).collect()
        };
        let b: Vec<Vec<u64>> = {
            let mut rng = TestRng::new(99);
            (0..10).map(|_| strat.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_reports_seed_and_case() {
        proptest! {
            #[allow(unreachable_code)]
            fn always_fails(v in 0u8..10) {
                prop_assert!(v >= 10, "v was {}", v);
            }
        }
        always_fails();
    }
}

//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace uses (see `vendor/README.md`).
//!
//! Provides the same harness surface — `criterion_group!` /
//! `criterion_main!`, benchmark groups, `Bencher::iter`, throughput
//! annotation — with a plain `std::time::Instant` measurement loop:
//! per-sample medians, no statistical analysis, no HTML reports. Bench
//! binaries compile and run unchanged and print one summary line per
//! benchmark; `--no-run` / CLI-filter invocations behave like upstream's
//! `cargo bench` entry points.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How work per iteration is reported alongside timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`group/id` in the output).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the closure given to `bench_function`/`bench_with_input`;
/// `iter` runs the routine and records wall-clock time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Batch sizing hint for `iter_batched` (ignored by this harness).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            measurement_time: Duration::from_millis(800),
            throughput: None,
        }
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
    list_only: bool,
    defaults: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            list_only: false,
            defaults: Settings::default(),
        }
    }
}

impl Criterion {
    /// Reads the CLI arguments `cargo bench` forwards: `--bench` /
    /// `--test` (cargo harness protocol), `--list`, and a positional
    /// substring filter. Everything else is accepted and ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" | "--test" | "--verbose" | "--quiet" | "--noplot" => {}
                "--list" => self.list_only = true,
                "--sample-size" | "--measurement-time" | "--warm-up-time" | "--profile-time" => {
                    let _ = args.next();
                }
                other => {
                    if !other.starts_with('-') && self.filter.is_none() {
                        self.filter = Some(other.to_string());
                    }
                }
            }
        }
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.defaults.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.defaults.measurement_time = t;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.defaults.clone();
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            settings,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let settings = self.defaults.clone();
        self.run_one(id, &settings, f);
        self
    }

    fn matches(&self, full_id: &str) -> bool {
        match &self.filter {
            Some(f) => full_id.contains(f.as_str()),
            None => true,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, full_id: &str, settings: &Settings, mut f: F) {
        if !self.matches(full_id) {
            return;
        }
        if self.list_only {
            println!("{full_id}: benchmark");
            return;
        }

        // Calibrate: grow the iteration count until one sample is long
        // enough to time reliably.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        loop {
            f(&mut bencher);
            if bencher.elapsed >= Duration::from_millis(2) || bencher.iters >= 1 << 30 {
                break;
            }
            bencher.iters = (bencher.iters * 4).max(4);
        }
        let per_iter_ns = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
        let budget_per_sample =
            settings.measurement_time.as_nanos() as f64 / settings.sample_size as f64;
        bencher.iters = ((budget_per_sample / per_iter_ns.max(0.1)) as u64).max(1);

        let mut samples: Vec<f64> = (0..settings.sample_size)
            .map(|_| {
                f(&mut bencher);
                bencher.elapsed.as_nanos() as f64 / bencher.iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        let median = samples[samples.len() / 2];

        let mut line = format!("{full_id:<50} time: [{} per iter]", format_ns(median));
        if let Some(t) = settings.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            let rate = count as f64 / (median * 1e-9);
            line.push_str(&format!("  thrpt: [{} {unit}]", format_si(rate)));
        }
        println!("{line}");
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn format_si(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.3} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3} K", rate / 1e3)
    } else {
        format!("{rate:.1} ")
    }
}

/// A named group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.settings.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.measurement_time = t;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.settings.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id);
        let settings = self.settings.clone();
        self.criterion.run_one(&full_id, &settings, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = format!("{}/{}", self.name, id);
        let settings = self.settings.clone();
        self.criterion.run_one(&full_id, &settings, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, like upstream's plain form.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) -> Vec<String> {
        // Drive the full group API the way the bench files do.
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Elements(10));
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &v| {
            b.iter(|| {
                runs += 1;
                black_box(v * 2)
            })
        });
        group.bench_function("direct", |b| b.iter(|| black_box(runs)));
        group.finish();
        assert!(runs > 0, "routine must actually run");
        Vec::new()
    }

    #[test]
    fn harness_runs_benchmarks() {
        let mut c = Criterion::default();
        c.sample_size(2).measurement_time(Duration::from_millis(5));
        quick(&mut c);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            list_only: false,
            defaults: Settings {
                sample_size: 2,
                measurement_time: Duration::from_millis(5),
                throughput: None,
            },
        };
        let mut ran = false;
        c.bench_function("something_else", |b| {
            b.iter(|| {
                ran = true;
            })
        });
        assert!(!ran, "filtered benchmark must not run");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter("lru").to_string(), "lru");
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
    }
}

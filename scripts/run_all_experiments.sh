#!/usr/bin/env bash
# Regenerates every table and figure via the resumable orchestrator.
# Scale knobs via environment: ST_MEASURE, MP_MEASURE, MIXES, etc.
#
# The campaign journal lives under $CAMPAIGN_DIR (default
# runs/full-campaign): kill this script at any point and rerun it —
# completed jobs are verified against their run manifests and skipped,
# and the aggregated campaign.jsonl comes out byte-identical to an
# uninterrupted pass. Reports still land in results/<name>.txt.
#
# LEGACY=1 runs the pre-orchestrator serial loop instead.
# (No -e: both paths propagate failures explicitly, with context.)
set -uo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

# Defaults sized for a ~45 minute single-core pass; scale up for tighter
# numbers (the paper-scale equivalents are noted in DESIGN.md). THREADS=0
# (the default) uses every available core, which cuts the wall clock
# roughly by the core count on the fan-out-heavy drivers (fig4-fig10,
# table3) — e.g. to ~12-15 minutes on a 4-core machine — with
# bit-identical outputs at any thread count.
THREADS="${THREADS:-0}"
ST_WARMUP="${ST_WARMUP:-2000000}"
ST_MEASURE="${ST_MEASURE:-8000000}"
MP_WARMUP="${MP_WARMUP:-1500000}"
MP_MEASURE="${MP_MEASURE:-5000000}"
MIXES="${MIXES:-24}"
SWEEP_MIXES="${SWEEP_MIXES:-8}"
SWEEP_MEASURE="${SWEEP_MEASURE:-3000000}"
ROC_MEASURE="${ROC_MEASURE:-6000000}"
CANDIDATES="${CANDIDATES:-60}"

BIN=target/release
cargo build --workspace --release || exit 1

if [ "${LEGACY:-0}" != "1" ]; then
  # PROCS bounds concurrent driver *processes*; each driver still
  # fans out internally over $THREADS, so the default keeps one
  # heavyweight driver at a time.
  PROCS="${PROCS:-1}"
  CAMPAIGN_DIR="${CAMPAIGN_DIR:-runs/full-campaign}"
  $BIN/orchestrate run --plan full --dir "$CAMPAIGN_DIR" \
    --procs "$PROCS" --worker-threads "$THREADS" \
    --st-warmup "$ST_WARMUP" --st-measure "$ST_MEASURE" \
    --mp-warmup "$MP_WARMUP" --mp-measure "$MP_MEASURE" \
    --mixes "$MIXES" --sweep-mixes "$SWEEP_MIXES" \
    --sweep-measure "$SWEEP_MEASURE" --roc-measure "$ROC_MEASURE" \
    --candidates "$CANDIDATES" || exit 1
  echo "all experiments complete; reports in results/, campaign in $CAMPAIGN_DIR"
  exit 0
fi

run() {
  local name="$1"; shift
  echo "=== $name: $* ==="
  # tee swallows the driver's status without the PIPESTATUS check, so
  # a failed driver used to let the loop report success.
  "$@" 2>&1 | tee "results/$name.txt"
  local status="${PIPESTATUS[0]}"
  if [ "$status" != "0" ]; then
    echo "!!! $name failed with exit $status" >&2
    exit "$status"
  fi
}

run fig_roc       $BIN/fig_roc --warmup 2000000 --measure "$ROC_MEASURE" --workloads 33 --threads "$THREADS"
run fig6          $BIN/fig6_st_speedup --warmup "$ST_WARMUP" --measure "$ST_MEASURE" --workloads 33 --threads "$THREADS"
run fig7          $BIN/fig7_st_mpki   --warmup "$ST_WARMUP" --measure "$ST_MEASURE" --workloads 33 --threads "$THREADS"
run fig4          $BIN/fig4_mp_speedup --warmup "$MP_WARMUP" --measure "$MP_MEASURE" --mixes "$MIXES" --threads "$THREADS"
run fig5          $BIN/fig5_mp_mpki    --warmup "$MP_WARMUP" --measure "$MP_MEASURE" --mixes "$MIXES" --threads "$THREADS"
run fig3_search   $BIN/fig3_search --candidates "$CANDIDATES" --workloads 10 --instructions 2000000 --threads "$THREADS"
run fig9          $BIN/fig9_assoc --mixes "$SWEEP_MIXES" --warmup 1000000 --measure "$SWEEP_MEASURE" --step 2 --threads "$THREADS"
run fig10         $BIN/fig10_ablation --mixes "$SWEEP_MIXES" --warmup 1000000 --measure "$SWEEP_MEASURE" --threads "$THREADS"
run tables        $BIN/tables_features
run table3        $BIN/table3_contrib --workloads 33 --instructions 2000000 --threads "$THREADS"

echo "all experiments complete; outputs in results/"

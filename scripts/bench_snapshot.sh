#!/usr/bin/env bash
# Captures a machine-readable performance snapshot of the predictor hot
# path and the hierarchy throughput into results/bench_snapshot.json.
#
# Mirrors the criterion groups (predictor_hot_path, hierarchy_throughput)
# but uses the std::time-based bench_snapshot binary, so it runs anywhere
# (CI, offline containers) and emits a single JSON document suitable for
# artifact upload and cross-PR diffing.
#
# Knobs (environment variables):
#   SAMPLES      repetitions per measurement, median taken   (default 7)
#   ITERS        hot-path iterations per sample              (default 2000000)
#   INSTRUCTIONS instructions per hierarchy sample           (default 200000)
#   OUT          output path                                 (default results/bench_snapshot.json)
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

SAMPLES="${SAMPLES:-7}"
ITERS="${ITERS:-2000000}"
INSTRUCTIONS="${INSTRUCTIONS:-200000}"
OUT="${OUT:-results/bench_snapshot.json}"

cargo build --release -p mrp-experiments --bin bench_snapshot
target/release/bench_snapshot \
  --samples "$SAMPLES" \
  --iters "$ITERS" \
  --instructions "$INSTRUCTIONS" \
  --out "$OUT"
echo "bench snapshot written to $OUT"

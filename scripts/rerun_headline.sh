#!/usr/bin/env bash
# Re-runs the four headline figures after policy-assignment changes.
# THREADS=0 (default) uses every core; results are identical at any count.
set -uo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
BIN=target/release
THREADS="${THREADS:-0}"

run() {
  local name="$1"; shift
  echo "=== $name: $* ==="
  "$@" 2>&1 | tee "results/$name.txt"
}

run fig6  $BIN/fig6_st_speedup --warmup 1500000 --measure 6000000 --workloads 33 --threads "$THREADS"
run fig7  $BIN/fig7_st_mpki    --warmup 1500000 --measure 6000000 --workloads 33 --threads "$THREADS"
run fig4  $BIN/fig4_mp_speedup --warmup 1000000 --measure 4000000 --mixes 16 --threads "$THREADS"
run fig5  $BIN/fig5_mp_mpki    --warmup 1000000 --measure 4000000 --mixes 16 --threads "$THREADS"
echo "headline reruns complete"

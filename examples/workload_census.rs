//! Prints a census of the synthetic workload suite: footprint, PC count,
//! store/dependent fractions, and where block reuse distances fall
//! relative to the 2MB LLC (32Ki blocks = bucket 15).
//!
//! Run with: `cargo run -p mrp-experiments --release --example workload_census`

use mrp_trace::analysis::profile;
use mrp_trace::workloads;

fn main() {
    const ACCESSES: u64 = 200_000;
    println!(
        "{:<18} {:>9} {:>5} {:>7} {:>6} {:>8} {:>8}",
        "workload", "MiB", "PCs", "store%", "dep%", "<LLC", ">=LLC"
    );
    for w in workloads::suite() {
        let p = profile(w.trace(1), ACCESSES);
        let below_llc = p.reuse_below(15); // 2^15 blocks = 2MB
        let total: u64 = p.reuse_log2_histogram.iter().sum();
        println!(
            "{:<18} {:>9.1} {:>5} {:>6.1}% {:>5.0}% {:>7.0}% {:>7.0}%",
            w.name(),
            p.footprint_mib(),
            p.distinct_pcs,
            p.store_fraction * 100.0,
            p.dependent_fraction * 100.0,
            below_llc * 100.0,
            if total == 0 {
                0.0
            } else {
                (1.0 - below_llc) * 100.0
            },
        );
    }
}

//! Exports a workload's trace to the binary trace format and reads it
//! back, demonstrating interop with external tools.
//!
//! Run with: `cargo run -p mrp-experiments --release --example trace_dump -- [--workload name] [--accesses N]`

use mrp_experiments::Args;
use mrp_trace::codec::{read_trace, write_trace};
use mrp_trace::workloads;

fn main() -> std::io::Result<()> {
    let args = Args::parse();
    let name = args.get_str("workload", "kv.server");
    let accesses = args.get_usize("accesses", 100_000);
    let workload = workloads::suite()
        .into_iter()
        .find(|w| w.name() == name)
        .unwrap_or_else(|| panic!("unknown workload {name}"));

    let records: Vec<_> = workload.trace(1).take(accesses).collect();
    let path = std::env::temp_dir().join(format!("{}.mrpt", name.replace('.', "_")));
    let mut file = std::fs::File::create(&path)?;
    write_trace(&mut file, &records)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "wrote {} accesses of {} to {} ({} bytes, {:.1} B/access)",
        records.len(),
        workload.name(),
        path.display(),
        bytes,
        bytes as f64 / records.len() as f64
    );

    let mut file = std::fs::File::open(&path)?;
    let decoded = read_trace(&mut file)?;
    assert_eq!(records, decoded);
    println!("round trip verified: {} records identical", decoded.len());
    std::fs::remove_file(&path)?;
    Ok(())
}

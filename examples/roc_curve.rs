//! Predictor accuracy demo: a small ROC comparison of SDBP, Perceptron,
//! and multiperspective prediction (the paper's Figures 1/8 in miniature).
//!
//! Run with: `cargo run -p mrp-experiments --release --example roc_curve`

use mrp_experiments::roc;
use mrp_experiments::runner::StParams;

fn main() {
    let params = StParams {
        warmup: 500_000,
        measure: 3_000_000,
        seed: 1,
    };
    println!("measuring reuse-predictor accuracy on 8 workloads (measure-only mode)...");
    let curves = roc::run(params, 8);

    for curve in &curves {
        println!("\n{} — selected operating points:", curve.predictor);
        println!("  {:>10} {:>8} {:>8}", "threshold", "FPR", "TPR");
        for &(t, fpr, tpr) in curve
            .points
            .iter()
            .filter(|(_, f, _)| *f > 0.02 && *f < 0.9)
        {
            // Print a sparse selection.
            if t % 16 == 0 || curve.predictor == "SDBP" {
                println!("  {t:>10} {fpr:>8.3} {tpr:>8.3}");
            }
        }
    }

    println!("\nTPR at the bypass-relevant FPR of ~0.28 (higher is better):");
    for curve in &curves {
        println!("  {:<18} {:.3}", curve.predictor, curve.tpr_at_fpr(0.28));
    }
    println!("(the paper's Fig 8(b): multiperspective dominates in the 0.25-0.31 region)");
}

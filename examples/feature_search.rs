//! Feature search in miniature: random search then hill climbing, as the
//! paper's design-space exploration (§5) did at supercomputer scale.
//!
//! Run with: `cargo run -p mrp-experiments --release --example feature_search`

use mrp_cache::policies::Lru;
use mrp_search::{FastEvaluator, HillClimber, RandomFeatures};
use mrp_trace::workloads;

fn main() {
    let suite = workloads::suite();
    // A small, diverse evaluation set.
    let picks: Vec<_> = [4usize, 8, 10, 14, 30]
        .iter()
        .map(|&i| suite[i].clone())
        .collect();
    println!("evaluating on:");
    for w in &picks {
        println!("  {} — {}", w.name(), w.description());
    }

    let evaluator = FastEvaluator::new(&picks, 7, 1_500_000);
    let lru =
        evaluator.average_mpki_with(|llc, _| Box::new(Lru::new(llc.sets(), llc.associativity())));
    println!("\nLRU reference: {lru:.3} MPKI");

    // Random search.
    let mut generator = RandomFeatures::new(123);
    let mut best_set = generator.feature_set(16);
    let mut best_mpki = evaluator.average_mpki(&best_set);
    for i in 0..20 {
        let candidate = generator.feature_set(16);
        let mpki = evaluator.average_mpki(&candidate);
        if mpki < best_mpki {
            best_mpki = mpki;
            best_set = candidate;
            println!("random set {i:2}: {best_mpki:.3} MPKI (new best)");
        }
    }

    // Hill climbing from the best random set.
    let mut climber = HillClimber::new(99, 10, 60);
    let report = climber.climb(&evaluator, best_set);
    println!(
        "\nhill climbing: {:.3} -> {:.3} MPKI ({} moves, {} accepted)",
        report.initial_mpki, report.mpki, report.attempts, report.accepted
    );
    println!("\nbest feature set found:");
    for f in &report.features {
        println!("  {f}");
    }
    println!("\npaper's published Table 1(a) set scores: {:.3} MPKI", {
        evaluator.average_mpki(&mrp_core::feature_sets::table_1a())
    });
}

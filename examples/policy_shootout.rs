//! Policy shootout: every implemented LLC policy on one workload.
//!
//! Run with: `cargo run -p mrp-experiments --release --example policy_shootout -- [--workload name]`

use mrp_experiments::runner::{run_single_hawkeye, run_single_kind, run_single_min, StParams};
use mrp_experiments::{Args, PolicyKind};
use mrp_trace::workloads;

fn main() {
    let args = Args::parse();
    let name = args.get_str("workload", "zipf.hot");
    let workload = workloads::suite()
        .into_iter()
        .find(|w| w.name() == name)
        .unwrap_or_else(|| panic!("unknown workload {name}; see mrp_trace::workloads::suite()"));
    println!("workload: {} — {}", workload.name(), workload.description());

    let params = StParams {
        warmup: args.get_u64("warmup", 1_000_000),
        measure: args.get_u64("measure", 5_000_000),
        seed: 1,
    };

    println!(
        "{:<12} {:>8} {:>8} {:>10}",
        "policy", "IPC", "MPKI", "bypasses"
    );
    let kinds = [
        PolicyKind::Random,
        PolicyKind::Lru,
        PolicyKind::TreePlru,
        PolicyKind::Srrip,
        PolicyKind::Drrip,
        PolicyKind::Mdpp,
        PolicyKind::Ship,
        PolicyKind::Sdbp,
        PolicyKind::Perceptron,
        PolicyKind::MpppbSingle,
        PolicyKind::MpppbAdaptive,
    ];
    for kind in kinds {
        let r = run_single_kind(&workload, kind, params);
        println!(
            "{:<12} {:>8.3} {:>8.2} {:>10}",
            kind.name(),
            r.ipc,
            r.mpki,
            r.stats.llc.bypasses
        );
    }
    let hawkeye = run_single_hawkeye(&workload, params);
    println!(
        "{:<12} {:>8.3} {:>8.2} {:>10}",
        "Hawkeye", hawkeye.ipc, hawkeye.mpki, hawkeye.stats.llc.bypasses
    );
    let min = run_single_min(&workload, params);
    println!(
        "{:<12} {:>8.3} {:>8.2} {:>10}",
        "MIN", min.ipc, min.mpki, min.stats.llc.bypasses
    );
}

//! Four programs sharing an 8MB LLC: weighted speedup of MPPPB over LRU
//! on one multi-programmed mix (the paper's Figure 4 setting, one point).
//!
//! Run with: `cargo run -p mrp-experiments --release --example multicore_mix -- [--mix N]`

use mrp_cache::HierarchyConfig;
use mrp_cpu::MulticoreSim;
use mrp_experiments::runner::{mix_standalone, standalone_ipcs, MpParams};
use mrp_experiments::{Args, PolicyKind};
use mrp_trace::{workloads, MixBuilder};

fn main() {
    let args = Args::parse();
    let mix_index = args.get_usize("mix", 0);
    let mix = MixBuilder::new(42).mix(100 + mix_index);
    println!("mix {}: {}", mix_index, mix.label());

    let params = MpParams {
        warmup: 1_000_000,
        measure: 4_000_000,
    };
    let suite = workloads::suite();
    println!("computing standalone-LRU baselines for weighted speedup...");
    let standalone = standalone_ipcs(&suite, params, mix.seed());
    let base = mix_standalone(&mix, &standalone);

    let config = HierarchyConfig::multi_core();
    for kind in [
        PolicyKind::Lru,
        PolicyKind::Perceptron,
        PolicyKind::MpppbMulti,
    ] {
        let mut sim = MulticoreSim::new(config, kind.build(&config.llc), &mix);
        let result = sim.run(params.warmup, params.measure);
        println!(
            "{:<12} weighted IPC {:.3}  aggregate MPKI {:>6.2}  per-core IPC {:?}",
            kind.name(),
            result.weighted_ipc(&base),
            result.mpki,
            result
                .ipc
                .iter()
                .map(|i| (i * 1000.0).round() / 1000.0)
                .collect::<Vec<_>>()
        );
    }
}

//! Quickstart: manage a last-level cache with multiperspective reuse
//! prediction and compare it against LRU on a scan-plus-hot-set workload.
//!
//! Run with: `cargo run -p mrp-experiments --release --example quickstart`

use mrp_cache::policies::Lru;
use mrp_cache::HierarchyConfig;
use mrp_core::mpppb::{Mpppb, MpppbConfig};
use mrp_cpu::SingleCoreSim;
use mrp_trace::workloads;

fn main() {
    // The paper's single-thread setup: 32KB L1D, 256KB L2, 2MB LLC,
    // stream prefetcher, 4-wide OoO core.
    let config = HierarchyConfig::single_thread();

    // A workload whose hot set is continually evicted by a cold scan
    // under LRU — the canonical case for dead-block bypass.
    let workload = workloads::suite()
        .into_iter()
        .find(|w| w.name() == "scanhot.protect")
        .expect("workload exists");
    println!("workload: {} — {}", workload.name(), workload.description());

    // Baseline: true LRU.
    let lru_policy = Lru::new(config.llc.sets(), config.llc.associativity());
    let mut lru_sim = SingleCoreSim::new(config, Box::new(lru_policy), workload.trace(1));
    let lru = lru_sim.run(1_000_000, 5_000_000);

    // MPPPB with the paper's Table 1(a) features over static MDPP.
    let mpppb_policy = Mpppb::new(MpppbConfig::single_thread(&config.llc), &config.llc);
    let mut mpppb_sim = SingleCoreSim::new(config, Box::new(mpppb_policy), workload.trace(1));
    let mpppb = mpppb_sim.run(1_000_000, 5_000_000);

    println!("              {:>10} {:>10}", "LRU", "MPPPB");
    println!("IPC           {:>10.3} {:>10.3}", lru.ipc, mpppb.ipc);
    println!("LLC MPKI      {:>10.2} {:>10.2}", lru.mpki, mpppb.mpki);
    println!(
        "LLC bypasses  {:>10} {:>10}",
        lru.stats.llc.bypasses, mpppb.stats.llc.bypasses
    );
    println!("speedup: {:.1}%", (mpppb.ipc / lru.ipc - 1.0) * 100.0);
}

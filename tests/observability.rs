//! Observability contract tests: the JSONL run manifest round-trips
//! through its own validator, and the telemetry layer never perturbs
//! simulation results — the committed goldens must be bit-identical with
//! `--metrics` on and off, and disabled counters must stay at zero.

use std::path::PathBuf;

use mrp_experiments::runner::{run_single_kind, StParams};
use mrp_experiments::PolicyKind;
use mrp_obs::{Json, RunManifest};
use mrp_trace::workloads;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mrp-obs-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn manifest_round_trips_through_validation() {
    let dir = scratch_dir("roundtrip");
    let mut manifest = RunManifest::new("obs_test", 7, &dir);
    manifest.meta("threads", Json::U64(3));
    manifest.meta("note", Json::Str("round-trip".into()));
    manifest.cell("zipf.hot", "LRU", &[("ipc", 1.25), ("mpki", 9.5)]);
    manifest.cell("zipf.hot", "MPPPB", &[("ipc", 1.5), ("mpki", 7.25)]);
    manifest.scalar("geomean_speedup.MPPPB", 1.2);
    let path = manifest.finish().expect("write manifest");

    assert_eq!(path.extension().and_then(|e| e.to_str()), Some("jsonl"));
    let name = path.file_name().unwrap().to_string_lossy().into_owned();
    assert!(
        name.starts_with("obs_test-") && name.contains("-7."),
        "file name {name} must embed bin and seed"
    );

    let text = std::fs::read_to_string(&path).expect("read back");
    let summary = mrp_obs::validate(&text).expect("schema-valid manifest");
    assert_eq!(summary.schema, mrp_obs::SCHEMA);
    assert_eq!(summary.bin, "obs_test");
    assert_eq!(summary.cells, 2);
    assert_eq!(summary.scalars, 1);

    // The meta line leads and carries the caller's extra fields.
    let meta = Json::parse(text.lines().next().unwrap()).expect("parse meta");
    assert_eq!(meta.get("seed").and_then(Json::as_u64), Some(7));
    assert_eq!(meta.get("threads").and_then(Json::as_u64), Some(3));
    assert_eq!(meta.get("note").and_then(Json::as_str), Some("round-trip"));

    // validate_dir sees the same file; a corrupt sibling fails the scan.
    assert_eq!(mrp_obs::validate_dir(&dir).expect("dir valid").len(), 1);
    std::fs::write(dir.join("bogus.jsonl"), "not json\n").unwrap();
    assert!(mrp_obs::validate_dir(&dir).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sole owner of the process-global telemetry flag in this test binary:
/// checks the disabled no-op contract and metrics-on/off bit-identity in
/// one sequence so no parallel test observes a half-toggled flag.
#[test]
fn metrics_toggle_is_invisible_to_results() {
    assert!(!mrp_obs::enabled(), "telemetry defaults to off");

    // Disabled counters and gauges never record.
    let counter = mrp_obs::counter("test.obs.gate.count");
    let gauge = mrp_obs::gauge("test.obs.gate.depth");
    counter.add(5);
    gauge.set(9);
    assert_eq!(counter.get(), 0, "disabled counter must stay zero");
    assert_eq!(gauge.get(), 0, "disabled gauge must stay zero");

    // The golden cells, metrics off.
    let params = StParams {
        warmup: 20_000,
        measure: 80_000,
        seed: 1,
    };
    let suite = workloads::suite();
    let cells: Vec<_> = ["zipf.hot", "stream.rw"]
        .iter()
        .map(|n| suite.iter().find(|w| w.name() == *n).expect("workload"))
        .collect();
    let baseline: Vec<(u64, u64)> = cells
        .iter()
        .map(|w| {
            let r = run_single_kind(w, PolicyKind::MpppbSingle, params);
            (r.ipc.to_bits(), r.mpki.to_bits())
        })
        .collect();

    // Same cells with telemetry recording.
    mrp_obs::set_enabled(true);
    counter.incr();
    assert_eq!(counter.get(), 1, "enabled counter must record");
    let with_metrics: Vec<(u64, u64)> = cells
        .iter()
        .map(|w| {
            let r = run_single_kind(w, PolicyKind::MpppbSingle, params);
            (r.ipc.to_bits(), r.mpki.to_bits())
        })
        .collect();
    mrp_obs::set_enabled(false);

    assert_eq!(
        baseline, with_metrics,
        "telemetry must not perturb IPC/MPKI bits"
    );
}

//! Property tests for the orchestration state layer: journal entries
//! round-trip bit-identically, full journal documents replay cleanly,
//! a truncated final line (killed writer) is always tolerated, and the
//! spec hash is invariant under argument reordering.

use mrp_experiments::JobSpec;
use mrp_obs::{read_journal, JournalEntry};
use proptest::prelude::*;

/// Any non-meta entry (meta is only legal on line 1 and is generated
/// separately by the document strategies).
fn arbitrary_entry() -> impl Strategy<Value = JournalEntry> {
    (0usize..6, any::<u64>(), 0usize..8, any::<u64>()).prop_map(|(tag, n, i, m)| {
        let job = format!("job-{i}");
        match tag {
            0 => JournalEntry::Resume { timestamp: n },
            1 => JournalEntry::Enqueue {
                job: job.clone(),
                spec_hash: format!("{m:016x}"),
                spec: JobSpec::new(job, "self")
                    .arg("seed", n)
                    .arg("warmup", m)
                    .to_json(),
            },
            2 => JournalEntry::Running {
                job,
                pid: n,
                attempt: m % 4 + 1,
            },
            3 => JournalEntry::Done {
                job,
                spec_hash: format!("{m:016x}"),
                manifest: format!("orch-{}.jsonl", n % 16),
                via: ["run", "dedupe", "journal"][(n % 3) as usize].to_string(),
            },
            4 => JournalEntry::Fail {
                job,
                attempt: m % 4 + 1,
                reason: format!("worker exited with exit status: {}", n % 3),
            },
            _ => JournalEntry::Invalidate {
                job,
                reason: "manifest missing".into(),
            },
        }
    })
}

/// A full journal text: meta line plus rendered entries.
fn render_document(campaign: usize, timestamp: u64, entries: &[JournalEntry]) -> String {
    let mut lines = vec![JournalEntry::Meta {
        campaign: format!("camp-{campaign}"),
        timestamp,
    }
    .render()];
    lines.extend(entries.iter().map(JournalEntry::render));
    let mut text = lines.join("\n");
    text.push('\n');
    text
}

proptest! {
    #[test]
    fn journal_entries_round_trip_bit_equal(entry in arbitrary_entry()) {
        let line = entry.render();
        let parsed = JournalEntry::parse(&line).unwrap();
        prop_assert_eq!(&parsed, &entry);
        prop_assert_eq!(parsed.render(), line);
    }

    #[test]
    fn journal_documents_replay_cleanly(
        entries in proptest::collection::vec(arbitrary_entry(), 0..24),
        campaign in 0usize..4,
        timestamp in any::<u64>(),
    ) {
        let text = render_document(campaign, timestamp, &entries);
        let read = read_journal(&text).unwrap();
        prop_assert!(read.truncated.is_none());
        prop_assert_eq!(read.clean_len, text.len());
        prop_assert_eq!(read.entries.len(), entries.len() + 1);
        for (got, want) in read.entries[1..].iter().zip(&entries) {
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn truncated_final_line_is_tolerated(
        entries in proptest::collection::vec(arbitrary_entry(), 1..10),
        campaign in 0usize..4,
        timestamp in any::<u64>(),
        cut in any::<usize>(),
    ) {
        let full = render_document(campaign, timestamp, &entries);
        // Cut strictly inside the final line: keep at least one of its
        // bytes, lose at least one non-newline byte. Every such prefix
        // of a JSON object line is unparseable (the brace never closes),
        // which is exactly the killed-mid-append shape.
        let last_start = full[..full.len() - 1].rfind('\n').unwrap() + 1;
        let line_len = full.len() - last_start - 1;
        prop_assert!(line_len > 1, "journal lines are always multi-byte JSON objects");
        let keep = last_start + 1 + cut % (line_len - 1);
        let text = &full[..keep];

        let read = read_journal(text).unwrap();
        prop_assert_eq!(read.truncated.as_deref(), Some(&full[last_start..keep]));
        prop_assert_eq!(read.clean_len, last_start);
        // Every entry before the partial line survives.
        prop_assert_eq!(read.entries.len(), entries.len());
        for (got, want) in read.entries[1..].iter().zip(&entries[..entries.len() - 1]) {
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn spec_hash_is_invariant_under_argument_rotation(
        pairs in 0usize..6,
        rotation in any::<usize>(),
        seed in any::<u64>(),
    ) {
        let mut spec = JobSpec::new("prop", "self");
        for i in 0..pairs {
            spec = spec.arg(format!("k{i}"), seed.wrapping_add(i as u64));
        }
        let mut rotated = spec.clone();
        if !rotated.args.is_empty() {
            let len = rotated.args.len();
            rotated.args.rotate_left(rotation % len);
        }
        prop_assert_eq!(spec.spec_hash(), rotated.spec_hash());
        prop_assert_eq!(spec.spec_hash_hex(), rotated.spec_hash_hex());

        // And it is NOT invariant under a changed value.
        if pairs > 0 {
            let mut changed = spec.clone();
            changed.args[0].1.push('x');
            prop_assert_ne!(spec.spec_hash(), changed.spec_hash());
        }
    }
}

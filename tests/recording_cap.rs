//! LRU bound on the process-global recording memo. Isolated in its own
//! test binary: shrinking the cap is process-wide and would race any
//! parallel test that relies on memoized recordings staying resident.

use std::sync::Arc;

use mrp_experiments::recording::{
    cached_recordings, clear_recordings, recording_cap, recording_for, set_recording_cap,
    DEFAULT_RECORDING_CAP,
};
use mrp_trace::workloads;

#[test]
fn recording_memo_is_lru_bounded() {
    assert_eq!(recording_cap(), DEFAULT_RECORDING_CAP);
    clear_recordings();
    set_recording_cap(2);

    let suite = workloads::suite();
    let w = &suite[0];
    // Distinct seeds -> distinct keys; tiny windows keep this fast.
    let first = recording_for(w, 0xA110, 500, 2_000);
    let _second = recording_for(w, 0xA111, 500, 2_000);
    assert_eq!(cached_recordings(), 2);

    // Third insertion evicts the coldest key (the first).
    let _third = recording_for(w, 0xA112, 500, 2_000);
    assert_eq!(cached_recordings(), 2, "cap must bound the cache");

    // Re-requesting the evicted key re-records rather than reusing.
    let first_again = recording_for(w, 0xA110, 500, 2_000);
    assert!(
        !Arc::ptr_eq(&first, &first_again),
        "evicted recording must be recomputed"
    );

    // Touching an entry protects it: request 0xA112 (making 0xA110 the
    // coldest again), then insert a fresh key — 0xA112 must survive.
    let third_touched = recording_for(w, 0xA112, 500, 2_000);
    let _fourth = recording_for(w, 0xA113, 500, 2_000);
    let third_after = recording_for(w, 0xA112, 500, 2_000);
    assert!(
        Arc::ptr_eq(&third_touched, &third_after),
        "recently used recording must survive eviction"
    );

    // Cap 0 disables eviction entirely.
    set_recording_cap(0);
    for seed in 0xB000..0xB008u64 {
        recording_for(w, seed, 500, 2_000);
    }
    assert!(cached_recordings() >= 8, "cap 0 must not evict");

    set_recording_cap(DEFAULT_RECORDING_CAP);
    clear_recordings();
}

//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use mrp_cache::policies::{Lru, PlruTree, RripState, Srrip, RRIP_MAX};
use mrp_cache::{AccessResult, Cache, CacheConfig};
use mrp_core::context::PcHistory;
use mrp_core::feature::{Feature, FeatureKind};
use mrp_core::mpppb::{Mpppb, MpppbConfig};
use mrp_core::sampler::{clamp_confidence, partial_tag, Sampler};
use mrp_trace::generators::ZipfSampler;
use mrp_trace::MemoryAccess;

fn arbitrary_feature() -> impl Strategy<Value = Feature> {
    (1u8..=18, 0u8..7, any::<bool>(), 0u8..32, 1u8..32, 0u8..=17).prop_map(
        |(assoc, kind_tag, xor, begin, width, which)| {
            let end = begin.saturating_add(width).min(63);
            let kind = match kind_tag {
                0 => FeatureKind::Pc { begin, end, which },
                1 => FeatureKind::Address { begin, end },
                2 => FeatureKind::Bias,
                3 => FeatureKind::Burst,
                4 => FeatureKind::Insert,
                5 => FeatureKind::LastMiss,
                _ => FeatureKind::Offset {
                    begin: begin.min(5),
                    end: end.min(5).max(begin.min(5)),
                },
            };
            Feature::new(assoc, kind, xor)
        },
    )
}

proptest! {
    #[test]
    fn feature_indices_always_fit_their_table(
        feature in arbitrary_feature(),
        pc in any::<u64>(),
        address in any::<u64>(),
        is_mru in any::<bool>(),
        is_insert in any::<bool>(),
        last_miss in any::<bool>(),
        history in proptest::collection::vec(any::<u64>(), 0..18),
    ) {
        let ctx = mrp_core::context::FeatureContext {
            pc,
            address,
            pc_history: &history,
            is_mru,
            is_insert,
            last_miss,
        };
        let index = feature.index(&ctx) as usize;
        prop_assert!(index < feature.table_size(), "{feature}: {index} >= {}", feature.table_size());
    }

    #[test]
    fn compiled_plan_offsets_match_reference_indexing(
        features in proptest::collection::vec(arbitrary_feature(), 1..12),
        pc in any::<u64>(),
        address in any::<u64>(),
        is_mru in any::<bool>(),
        is_insert in any::<bool>(),
        last_miss in any::<bool>(),
        history in proptest::collection::vec(any::<u64>(), 0..18),
    ) {
        // The compiled plan is a pure lowering of `Feature::index`: for
        // every feature set and context, each emitted arena offset must
        // equal the feature's own base (cumulative table sizes) plus the
        // reference per-table index.
        let ctx = mrp_core::context::FeatureContext {
            pc,
            address,
            pc_history: &history,
            is_mru,
            is_insert,
            last_miss,
        };
        let plan = mrp_core::FeaturePlan::new(&features);
        let mut offsets = Vec::new();
        plan.compute_offsets(&ctx, &mut offsets);
        prop_assert_eq!(offsets.len(), features.len());
        let mut base = 0usize;
        for (feature, &offset) in features.iter().zip(&offsets) {
            let expected = base + feature.index(&ctx) as usize;
            prop_assert_eq!(
                offset as usize, expected,
                "{}: arena offset {} != base {} + reference index {}",
                feature, offset, base, feature.index(&ctx)
            );
            base += feature.table_size();
        }
        prop_assert_eq!(base, plan.arena_len());
    }

    #[test]
    fn feature_display_is_stable_notation(feature in arbitrary_feature()) {
        let s = feature.to_string();
        prop_assert!(s.ends_with(')'));
        prop_assert!(s.contains('('));
        // The A parameter always leads the list.
        let inside = &s[s.find('(').unwrap() + 1..s.len() - 1];
        let first: u8 = inside.split(',').next().unwrap().parse().unwrap();
        prop_assert_eq!(first, feature.assoc);
    }

    #[test]
    fn cache_occupancy_never_exceeds_capacity(
        blocks in proptest::collection::vec(0u64..64, 1..300),
    ) {
        let config = CacheConfig::new(64 * 8, 4); // 2 sets x 4 ways
        let mut cache = Cache::new(
            config,
            Box::new(Lru::new(config.sets(), config.associativity())),
        );
        for &b in &blocks {
            let _ = cache.access(&MemoryAccess::load(0x400000, b * 64), false);
            prop_assert!(cache.resident_blocks() <= 8);
        }
    }

    #[test]
    fn lru_cache_hits_iff_block_within_reuse_distance(
        blocks in proptest::collection::vec(0u64..16, 2..100),
    ) {
        // Fully-associative-per-set check: with 1 set of 8 ways, an access
        // hits iff fewer than 8 distinct blocks intervened since last use.
        let config = CacheConfig::new(64 * 8, 8);
        let mut cache = Cache::new(
            config,
            Box::new(Lru::new(config.sets(), config.associativity())),
        );
        let mut last_seen: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for (i, &b) in blocks.iter().enumerate() {
            let expected_hit = last_seen.get(&b).map(|&j| {
                let distinct: std::collections::HashSet<u64> =
                    blocks[j + 1..i].iter().copied().collect();
                distinct.len() < 8
            });
            let result = cache.access(&MemoryAccess::load(0x400000, b * 64), false);
            if let Some(expected) = expected_hit {
                prop_assert_eq!(result.is_hit(), expected, "access {} block {}", i, b);
            }
            last_seen.insert(b, i);
        }
    }

    #[test]
    fn plru_set_position_round_trips(way in 0u32..16, position in 0u32..16) {
        let mut tree = PlruTree::new(1, 16);
        tree.set_position(0, way, position);
        prop_assert_eq!(tree.position_of(0, way), position);
    }

    #[test]
    fn plru_victim_is_always_a_valid_way(
        touches in proptest::collection::vec((0u32..16, 0u32..16), 1..64),
    ) {
        let mut tree = PlruTree::new(1, 16);
        for (way, position) in touches {
            tree.set_position(0, way, position);
            prop_assert!(tree.victim(0) < 16);
        }
    }

    #[test]
    fn rrip_victim_selection_terminates_and_is_valid(
        values in proptest::collection::vec(0u8..=RRIP_MAX, 4),
    ) {
        let mut state = RripState::new(1, 4);
        for (w, &v) in values.iter().enumerate() {
            state.set(0, w as u32, v);
        }
        let victim = state.victim(0);
        prop_assert!(victim < 4);
        prop_assert_eq!(state.get(0, victim), RRIP_MAX);
    }

    #[test]
    fn srrip_never_chooses_out_of_range_victims(
        blocks in proptest::collection::vec(0u64..64, 1..200),
    ) {
        let config = CacheConfig::new(64 * 16, 4);
        let mut cache = Cache::new(config, Box::new(Srrip::new(config.sets(), config.associativity())));
        for &b in &blocks {
            let _ = cache.access(&MemoryAccess::load(1, b * 64), false);
        }
        prop_assert!(cache.resident_blocks() <= 16);
    }

    #[test]
    fn pc_history_keeps_most_recent_first(pcs in proptest::collection::vec(any::<u64>(), 1..50)) {
        let mut h = PcHistory::new();
        for &pc in &pcs {
            h.push(pc);
        }
        let slice = h.as_slice();
        prop_assert_eq!(slice[0], *pcs.last().unwrap());
        let expect_len = pcs.len().min(mrp_core::context::HISTORY_DEPTH);
        prop_assert_eq!(slice.len(), expect_len);
        for (i, &pc) in slice.iter().enumerate() {
            prop_assert_eq!(pc, pcs[pcs.len() - 1 - i]);
        }
    }

    #[test]
    fn sampler_training_events_reference_valid_features(
        tags in proptest::collection::vec(0u16..32, 1..200),
        assocs in proptest::collection::vec(1u8..=18, 1..8),
    ) {
        let features = assocs.len();
        let mut sampler = Sampler::new(2, assocs, 50);
        let mut events = Vec::new();
        for (i, &tag) in tags.iter().enumerate() {
            events.clear();
            let indices: Vec<u16> = (0..features).map(|f| (f as u16 + tag) % 4).collect();
            let _ = sampler.access((i % 2) as u32, tag, &indices, 0, &mut events);
            for &e in &events {
                prop_assert!(usize::from(mrp_core::sampler::event_feature(e)) < features);
                prop_assert!(mrp_core::sampler::event_index(e) < 4);
            }
            prop_assert!(sampler.set_len((i % 2) as u32) <= 18);
        }
    }

    #[test]
    fn confidence_clamp_is_idempotent_and_bounded(sum in any::<i32>()) {
        let clamped = clamp_confidence(sum);
        prop_assert!((-256..=255).contains(&i32::from(clamped)));
        prop_assert_eq!(clamp_confidence(i32::from(clamped)), clamped);
    }

    #[test]
    fn partial_tags_are_deterministic(block in any::<u64>()) {
        prop_assert_eq!(partial_tag(block), partial_tag(block));
    }

    #[test]
    fn mpppb_cache_preserves_inclusion_of_resident_blocks(
        blocks in proptest::collection::vec(0u64..128, 1..300),
    ) {
        // Whatever the policy decides, a block that was just filled (not
        // bypassed) must be resident, and hits must find it.
        let llc = CacheConfig::new(64 * 16 * 4, 16); // 4 sets
        let mut config = MpppbConfig::single_thread(&llc);
        config.sampler_sets = 4;
        let mut cache = Cache::new(llc, Box::new(Mpppb::new(config, &llc)));
        for &b in &blocks {
            let access = MemoryAccess::load(0x400000 + (b % 7) * 4, b * 64);
            match cache.access(&access, false) {
                AccessResult::Miss { .. } => prop_assert!(cache.probe(b)),
                AccessResult::Hit => prop_assert!(cache.probe(b)),
                AccessResult::Bypassed => prop_assert!(!cache.probe(b)),
            }
        }
    }

    #[test]
    fn soa_cache_matches_shadow_reference_on_random_streams(
        policy_tag in 0u8..3,
        accesses in proptest::collection::vec((0u64..64, 0u64..7, any::<bool>()), 1..200),
    ) {
        // The optimized SoA cache and the naive `Option<u64>`-slot shadow
        // reference must stay bit-equal on arbitrary short streams — the
        // same property the `verify` binary checks at fuzz scale, here
        // under proptest's own shrinking.
        let llc = CacheConfig::new(64 * 8, 4); // 2 sets x 4 ways
        let build = move |cfg: &CacheConfig| -> Box<dyn mrp_cache::ReplacementPolicy + Send> {
            match policy_tag {
                0 => Box::new(Lru::new(cfg.sets(), cfg.associativity())),
                1 => Box::new(Srrip::new(cfg.sets(), cfg.associativity())),
                _ => Box::new(mrp_cache::policies::TreePlru::new(cfg.sets(), cfg.associativity())),
            }
        };
        let stream: Vec<(MemoryAccess, bool)> = accesses
            .iter()
            .map(|&(block, pc_site, is_prefetch)| {
                (MemoryAccess::load(0x400000 + pc_site * 4, block * 64), is_prefetch)
            })
            .collect();
        let (report, _) = mrp_verify::run_lockstep(&llc, "properties", &build, &stream);
        prop_assert!(report.is_clean(), "divergence:\n{}", report);
    }

    #[test]
    fn lane_kernels_match_reference_indexing_at_every_level(
        features in proptest::collection::vec(arbitrary_feature(), 1..12),
        pc in any::<u64>(),
        address in any::<u64>(),
        is_mru in any::<bool>(),
        is_insert in any::<bool>(),
        last_miss in any::<bool>(),
        history in proptest::collection::vec(any::<u64>(), 0..18),
    ) {
        // The lane-SoA kernels (scalar and, where the machine has it,
        // AVX2) are alternative evaluations of the same compiled plan:
        // each level's offsets must equal the interpretive
        // `Feature::index` reference bit for bit.
        let ctx = mrp_core::context::FeatureContext {
            pc,
            address,
            pc_history: &history,
            is_mru,
            is_insert,
            last_miss,
        };
        let plan = mrp_core::FeaturePlan::new(&features);
        let mut reference = Vec::new();
        let mut base = 0u16;
        for feature in &features {
            reference.push(base + feature.index(&ctx));
            base += feature.table_size() as u16;
        }
        let mut offsets = Vec::new();
        plan.compute_offsets_compiled(&ctx, &mut offsets);
        prop_assert_eq!(&offsets, &reference, "compiled path diverged");
        for &level in mrp_core::simd::available_levels() {
            plan.compute_offsets_with(level, &ctx, &mut offsets);
            prop_assert_eq!(
                &offsets, &reference,
                "{} lane kernel diverged from reference", level.name()
            );
        }
    }

    #[test]
    fn batched_offsets_equal_per_context_offsets(
        features in proptest::collection::vec(arbitrary_feature(), 1..12),
        contexts in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), any::<bool>(), any::<bool>(), any::<bool>()),
            1..=mrp_core::plan::MAX_BATCH,
        ),
    ) {
        // Batching hoists context transposition, nothing else: a batch of
        // any width must emit exactly the offsets the per-context path
        // emits for each member.
        let plan = mrp_core::FeaturePlan::new(&features);
        let views: Vec<mrp_core::context::FeatureContext<'_>> = contexts
            .iter()
            .map(|&(pc, address, is_mru, is_insert, last_miss)| {
                mrp_core::context::FeatureContext {
                    pc,
                    address,
                    pc_history: &[],
                    is_mru,
                    is_insert,
                    last_miss,
                }
            })
            .collect();
        let mut batched = Vec::new();
        plan.compute_offsets_batch(&views, &mut batched);
        prop_assert_eq!(batched.len(), views.len() * features.len());
        let mut single = Vec::new();
        for (i, ctx) in views.iter().enumerate() {
            plan.compute_offsets(ctx, &mut single);
            prop_assert_eq!(
                &batched[i * features.len()..(i + 1) * features.len()],
                single.as_slice(),
                "batch member {} diverged from per-context offsets", i
            );
        }
    }

    #[test]
    fn confidence_kernels_agree_across_levels(
        features in proptest::collection::vec(arbitrary_feature(), 1..12),
        weight_seed in any::<u64>(),
        pc in any::<u64>(),
        address in any::<u64>(),
    ) {
        // The gather-sum confidence kernel family must agree across SIMD
        // levels (AVX2 vs scalar where available) and with a plain
        // per-table weight sum, on randomized weight arenas.
        let plan = mrp_core::FeaturePlan::new(&features);
        let mut tables = mrp_core::tables::WeightTables::new(&features);
        let (min, max) = tables.weight_bounds();
        let span = (i32::from(max) - i32::from(min) + 1) as u64;
        let mut state = weight_seed;
        for offset in 0..tables.arena_len() {
            state = state.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(1);
            let target = i32::from(min) + ((state >> 33) % span) as i32;
            for _ in 0..target.abs() {
                if target >= 0 {
                    tables.increment_at(offset as u16);
                } else {
                    tables.decrement_at(offset as u16);
                }
            }
        }
        let ctx = mrp_core::context::FeatureContext {
            pc,
            address,
            pc_history: &[],
            is_mru: false,
            is_insert: false,
            last_miss: false,
        };
        let mut offsets = Vec::new();
        plan.compute_offsets(&ctx, &mut offsets);
        let expected: i32 = features
            .iter()
            .enumerate()
            .map(|(t, f)| i32::from(tables.weight(t, f.index(&ctx))))
            .sum();
        for &level in mrp_core::simd::available_levels() {
            prop_assert_eq!(
                tables.confidence_with(level, &offsets),
                expected,
                "{} gather-sum diverged from per-table weight sum", level.name()
            );
        }
    }

    #[test]
    fn batched_apply_equals_sequential_saturating_updates(
        features in proptest::collection::vec(arbitrary_feature(), 1..8),
        raw_events in proptest::collection::vec((any::<u16>(), any::<bool>()), 1..300),
        pool_cap in 1u32..=u16::MAX as u32,
    ) {
        // The batched weight-update kernel must resolve duplicate-offset
        // conflicts exactly as a sequential increment_at/decrement_at
        // fold, at every level. `pool_cap` sometimes squeezes all events
        // into a handful of offsets, making same- and mixed-sign
        // duplicate runs common.
        use mrp_core::tables::WeightTables;
        let arena = WeightTables::new(&features).arena_len() as u32;
        let pool = arena.min(pool_cap);
        let events: Vec<u32> = raw_events
            .iter()
            .map(|&(o, dec)| ((u32::from(o) % pool) << 1) | u32::from(dec))
            .collect();
        let mut reference = WeightTables::new(&features);
        for &e in &events {
            let offset = (e >> 1) as u16;
            if e & 1 == 1 {
                reference.decrement_at(offset);
            } else {
                reference.increment_at(offset);
            }
        }
        for &level in mrp_core::simd::available_levels() {
            let mut tables = WeightTables::new(&features);
            tables.apply_events_with(level, &events);
            for (t, f) in features.iter().enumerate() {
                for i in 0..f.table_size() as u16 {
                    prop_assert_eq!(
                        tables.weight(t, i), reference.weight(t, i),
                        "{} batched apply diverged at table {} index {}",
                        level.name(), t, i
                    );
                }
            }
        }
    }

    #[test]
    fn saturating_runs_round_trip_through_every_level(
        m in 1usize..200,
        initial in i32::from(mrp_core::tables::WEIGHT_MIN)..=i32::from(mrp_core::tables::WEIGHT_MAX),
    ) {
        // m increments followed by m decrements on one offset: the
        // increment run may pin at WEIGHT_MAX, making the round trip
        // order-dependent — ending at clamp(clamp(initial + m) - m),
        // not back at `initial`. The kernel's mixed-sign replay must
        // preserve exactly that.
        use mrp_core::simd::{self, ApplyScratch, GATHER_PAD};
        use mrp_core::tables::{WEIGHT_MAX, WEIGHT_MIN};
        let mut base = vec![0i8; 1 + GATHER_PAD];
        base[0] = initial as i8;
        let events: Vec<u32> = (0..2 * m).map(|i| u32::from(i >= m)).collect();
        let up = (initial + m as i32).clamp(i32::from(WEIGHT_MIN), i32::from(WEIGHT_MAX));
        let expected = (up - m as i32).clamp(i32::from(WEIGHT_MIN), i32::from(WEIGHT_MAX));
        let mut scratch = ApplyScratch::default();
        for &level in simd::available_levels() {
            let mut weights = base.clone();
            simd::apply_events_i8(
                &mut weights,
                &events,
                WEIGHT_MIN,
                WEIGHT_MAX,
                level,
                &mut scratch,
            );
            prop_assert_eq!(
                i32::from(weights[0]), expected,
                "{} saturation round-trip diverged (m={}, initial={})",
                level.name(), m, initial
            );
        }
    }

    #[test]
    fn guided_zipf_rank_equals_plain_binary_search(
        n in 1usize..5000,
        theta_milli in 0u32..2000,
        draws in proptest::collection::vec(0u64..(1u64 << 53), 1..50),
    ) {
        // The bucketed guide index is a pure accelerator over the CDF:
        // for any uniform draw it must return the same rank as an
        // unaccelerated binary search.
        let sampler = ZipfSampler::new(n, f64::from(theta_milli) / 1000.0);
        for &v in &draws {
            let u = v as f64 / (1u64 << 53) as f64;
            prop_assert_eq!(
                sampler.sample_at(u),
                sampler.rank_by_binary_search(u),
                "n={} theta={} u={}", n, theta_milli, u
            );
        }
    }
}

//! Smoke tier of the differential verification subsystem: every
//! registered policy runs lockstep against the shadow reference cache on
//! small fuzzed streams, the predictor lockstep runs on random feature
//! specs, and the MIN oracle bound is applied — all at a scale that fits
//! in a normal `cargo test` run. The full-scale sweep is
//! `cargo run -p mrp-experiments --release --bin verify`.

use std::sync::Arc;

use mrp_cache::CacheConfig;
use mrp_experiments::PolicyKind;
use mrp_verify::{run_replay_check, run_verification, PolicySpec, VerifyConfig};

const ALL_POLICIES: [&str; 13] = [
    "lru",
    "random",
    "plru",
    "srrip",
    "drrip",
    "mdpp",
    "ship",
    "sdbp",
    "perceptron",
    "mpppb",
    "mpppb-srrip",
    "mpppb-adaptive",
    "hawkeye",
];

fn spec(name: &str) -> PolicySpec {
    if name == "hawkeye" {
        return PolicySpec::new(name, Arc::new(|llc: &CacheConfig| PolicyKind::hawkeye(llc)));
    }
    let kind = PolicyKind::from_name(name).expect("known policy");
    PolicySpec::new(name, Arc::new(move |llc: &CacheConfig| kind.build(llc)))
}

#[test]
fn all_policies_verify_clean_at_smoke_scale() {
    let cfg = VerifyConfig {
        seed: 0xC0FFEE,
        accesses: 16_000,
        jobs: 4,
    };
    let policies: Vec<PolicySpec> = ALL_POLICIES.iter().map(|n| spec(n)).collect();

    let summary = run_verification(&cfg, &policies);
    let failures: Vec<String> = summary
        .policy_cells
        .iter()
        .filter(|c| !c.report.is_clean())
        .map(|c| format!("policy {} job {}:\n{}", c.policy, c.job, c.report))
        .chain(
            summary
                .predictor_reports
                .iter()
                .enumerate()
                .filter(|(_, r)| !r.is_clean())
                .map(|(j, r)| format!("predictor job {j}:\n{r}")),
        )
        .collect();
    assert!(
        failures.is_empty(),
        "verification failures:\n{}",
        failures.join("\n")
    );
    assert_eq!(summary.policy_cells.len(), 13 * 4);
    assert_eq!(summary.predictor_reports.len(), 4);
    assert!(summary.min_checks.0 > 0, "MIN bound never applied");
    assert!(summary.shrunk.is_none());
}

#[test]
fn replay_path_is_bit_identical_for_every_policy() {
    // Record-once/replay-many lockstep: every registered policy, on a
    // slice of real workloads, must produce bit-identical IPC, MPKI,
    // cycles, and hierarchy counters through the replay fast path.
    let policies: Vec<PolicySpec> = ALL_POLICIES.iter().map(|n| spec(n)).collect();
    let suite = mrp_trace::workloads::suite();
    let summary = run_replay_check(&policies, &suite[..3], 10_000, 40_000, 0xC0FFEE);
    assert_eq!(summary.cells, 13 * 3);
    assert!(summary.is_clean(), "{summary}");
}

#[test]
fn lockstep_stays_clean_with_window_and_simd_disabled() {
    // MRP_NO_WINDOW and MRP_NO_SIMD are read once and OnceLock-cached,
    // so the scalar/unwindowed configuration needs a fresh process: run
    // the verify driver as a subprocess with both knobs set. This pins
    // the fallback paths (no windowed offset precompute, no SIMD lanes)
    // to the same lockstep + replay-equivalence bar as the defaults.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_verify"))
        .env("MRP_NO_WINDOW", "1")
        .env("MRP_NO_SIMD", "1")
        .args(["--seed", "5", "--accesses", "8000", "--jobs", "2"])
        .args(["--policies", "mpppb,mpppb-srrip,mpppb-adaptive"])
        .args(["--replay-workloads", "1"])
        .args(["--replay-warmup", "2000", "--replay-measure", "8000"])
        .output()
        .expect("spawn verify driver");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "verify diverged with window+SIMD disabled:\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("# clean"),
        "expected a clean verification summary:\n{stdout}"
    );
}

#[test]
fn verification_replays_identically_across_thread_counts() {
    let cfg = VerifyConfig {
        seed: 99,
        accesses: 4_000,
        jobs: 4,
    };
    let policies = vec![spec("lru"), spec("mpppb")];
    let run = |threads: usize| {
        mrp_runtime::set_threads(threads);
        let summary = run_verification(&cfg, &policies);
        mrp_runtime::set_threads(0);
        summary
            .policy_cells
            .iter()
            .map(|c| (c.policy.clone(), c.job, c.demand_misses, c.min_misses))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(1), run(4), "results must not depend on thread count");
}

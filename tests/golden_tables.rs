//! Golden regression tests for the table-producing drivers: the Fig. 10
//! ablation and Table 3 feature-contribution matrices at reduced scale
//! must match their committed references bit-for-bit.
//!
//! Regenerate after an *intentional* output change with the driver's
//! `--bless` flag (`cargo run -p mrp-experiments --bin fig10_ablation --
//! --bless`, likewise `table3_contrib`), or with
//! `MRP_UPDATE_GOLDEN=1 cargo test -p mrp-experiments --test golden_tables`.
//!
//! Values depend on the rand implementation backing the trace generators;
//! a fingerprint mismatch skips the comparison (see
//! `mrp_experiments::golden`).

use mrp_experiments::golden;

#[test]
fn fig10_ablation_matches_committed_golden() {
    golden::check_against_committed("fig10_golden.txt", &golden::ablation_golden());
}

#[test]
fn table3_contrib_matches_committed_golden() {
    golden::check_against_committed("table3_golden.txt", &golden::table3_golden());
}

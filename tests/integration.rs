//! Cross-crate integration tests: trace generators -> hierarchy -> CPU
//! model -> policies -> experiment metrics, exercised end to end at small
//! scale.

use mrp_cache::{HierarchyConfig, ReplacementPolicy};
use mrp_cpu::SingleCoreSim;
use mrp_experiments::runner::{
    run_single_hawkeye, run_single_kind, run_single_min, MpParams, StParams,
};
use mrp_experiments::PolicyKind;
use mrp_trace::{workloads, MixBuilder};

fn tiny() -> StParams {
    StParams {
        warmup: 100_000,
        measure: 400_000,
        seed: 1,
    }
}

#[test]
fn mpppb_beats_lru_on_scan_hot_workload() {
    let suite = workloads::suite();
    let scanhot = suite
        .iter()
        .find(|w| w.name() == "scanhot.protect")
        .unwrap();
    let lru = run_single_kind(scanhot, PolicyKind::Lru, tiny());
    let mpppb = run_single_kind(scanhot, PolicyKind::MpppbSingle, tiny());
    assert!(
        mpppb.mpki < lru.mpki * 0.9,
        "MPPPB mpki {} vs LRU {}",
        mpppb.mpki,
        lru.mpki
    );
    assert!(mpppb.ipc > lru.ipc);
}

#[test]
fn min_lower_bounds_every_realistic_policy() {
    let suite = workloads::suite();
    // loop.edge is LRU-pathological, so the gap is wide and stable.
    let w = suite.iter().find(|w| w.name() == "loop.edge").unwrap();
    let min = run_single_min(w, tiny());
    for kind in [PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::MpppbSingle] {
        let r = run_single_kind(w, kind, tiny());
        assert!(
            min.mpki <= r.mpki + 0.3,
            "MIN ({:.2}) above {:?} ({:.2})",
            min.mpki,
            kind,
            r.mpki
        );
    }
}

#[test]
fn hawkeye_never_bypasses_but_mpppb_does() {
    let suite = workloads::suite();
    let stream = suite.iter().find(|w| w.name() == "stream.rw").unwrap();
    let hawkeye = run_single_hawkeye(stream, tiny());
    assert_eq!(hawkeye.stats.llc.bypasses, 0);
    let mpppb = run_single_kind(stream, PolicyKind::MpppbSingle, tiny());
    assert!(mpppb.stats.llc.bypasses > 0, "MPPPB should bypass a stream");
}

#[test]
fn single_thread_runs_are_reproducible_across_policies() {
    let suite = workloads::suite();
    let w = &suite[10];
    for kind in [
        PolicyKind::Lru,
        PolicyKind::Perceptron,
        PolicyKind::MpppbSingle,
    ] {
        let a = run_single_kind(w, kind, tiny());
        let b = run_single_kind(w, kind, tiny());
        assert_eq!(a.cycles, b.cycles, "{kind:?} not deterministic");
        assert_eq!(a.stats, b.stats);
    }
}

#[test]
fn instruction_accounting_is_consistent_between_cache_and_cpu() {
    let suite = workloads::suite();
    let config = HierarchyConfig::single_thread();
    let policy = PolicyKind::Lru.build(&config.llc);
    let mut sim = SingleCoreSim::new(config, policy, suite[3].trace(1));
    let r = sim.run(50_000, 200_000);
    assert_eq!(r.instructions, r.stats.instructions);
    assert!(r.cycles > 0);
    assert!((r.ipc - r.instructions as f64 / r.cycles as f64).abs() < 1e-9);
}

#[test]
fn multicore_weighted_speedup_is_bounded_by_core_count() {
    let params = MpParams {
        warmup: 50_000,
        measure: 200_000,
    };
    let suite = workloads::suite();
    let mix = MixBuilder::new(7).mix(3);
    let standalone = mrp_experiments::runner::standalone_ipcs(&suite, params, mix.seed());
    let base = mrp_experiments::runner::mix_standalone(&mix, &standalone);
    let result = mrp_experiments::runner::run_mix_kind(&mix, PolicyKind::MpppbMulti, params);
    let ws = result.weighted_ipc(&base);
    assert!(ws > 0.0 && ws <= 4.3, "weighted IPC out of range: {ws}");
}

#[test]
fn every_workload_runs_under_mpppb_without_panic() {
    let params = StParams {
        warmup: 10_000,
        measure: 60_000,
        seed: 3,
    };
    for w in workloads::suite() {
        let r = run_single_kind(&w, PolicyKind::MpppbSingle, params);
        assert!(r.ipc > 0.0, "{} produced zero IPC", w.name());
        assert!(r.mpki.is_finite());
    }
}

#[test]
fn adaptive_guard_tracks_raw_mpppb_on_friendly_workloads() {
    // On a workload where MPPPB clearly wins, the guard must not give the
    // win away entirely (leader overhead and convergence cost a margin).
    let suite = workloads::suite();
    let scanhot = suite
        .iter()
        .find(|w| w.name() == "scanhot.protect")
        .unwrap();
    let raw = run_single_kind(scanhot, PolicyKind::MpppbSingle, tiny());
    let guarded = run_single_kind(scanhot, PolicyKind::MpppbAdaptive, tiny());
    let lru = run_single_kind(scanhot, PolicyKind::Lru, tiny());
    assert!(raw.ipc > lru.ipc, "MPPPB should beat LRU here");
    assert!(
        guarded.ipc > lru.ipc * 0.98,
        "guard must not lose to LRU: {} vs {}",
        guarded.ipc,
        lru.ipc
    );
}

#[test]
fn cv_policy_uses_other_halfs_features() {
    use mrp_experiments::runner::mpppb_cv_policy;
    // Just exercises the CV construction for every workload: the policy
    // must build and run for members of both halves.
    let suite = workloads::suite();
    for w in suite.iter().take(6) {
        let policy = mpppb_cv_policy(w);
        assert_eq!(policy.name(), "mpppb-adaptive");
    }
}

#[test]
fn suite_profile_matches_workload_descriptions() {
    use mrp_trace::analysis::profile;
    let suite = workloads::suite();
    // stream.rw advertises 50% stores.
    let rw = suite.iter().find(|w| w.name() == "stream.rw").unwrap();
    let p = profile(rw.trace(1), 20_000);
    assert!((p.store_fraction - 0.5).abs() < 0.05);
    // chase workloads advertise dependence.
    let chase = suite.iter().find(|w| w.name() == "chase.16m").unwrap();
    let p = profile(chase.trace(1), 20_000);
    assert!(p.dependent_fraction > 0.9);
}

#[test]
fn parallel_single_thread_matrix_is_bit_identical_to_serial() {
    // The whole point of mrp-runtime: any --threads value must reproduce
    // the serial results exactly, bit for bit. Run the full single-thread
    // matrix (all policy columns incl. MIN) serially and on 4 workers and
    // compare every float through to_bits().
    let params = StParams {
        warmup: 20_000,
        measure: 80_000,
        seed: 3,
    };
    mrp_runtime::set_threads(1);
    let serial = mrp_experiments::single_thread::run(params, 3, true);
    mrp_runtime::set_threads(4);
    let parallel = mrp_experiments::single_thread::run(params, 3, true);
    mrp_runtime::set_threads(0);

    assert_eq!(serial.policy_names, parallel.policy_names);
    assert_eq!(serial.rows.len(), parallel.rows.len());
    for (s, p) in serial.rows.iter().zip(&parallel.rows) {
        assert_eq!(s.workload, p.workload);
        assert_eq!(
            s.lru_ipc.to_bits(),
            p.lru_ipc.to_bits(),
            "{}: LRU IPC diverged",
            s.workload
        );
        assert_eq!(s.lru_mpki.to_bits(), p.lru_mpki.to_bits());
        for ((sn, s_ipc, s_mpki), (pn, p_ipc, p_mpki)) in s.policies.iter().zip(&p.policies) {
            assert_eq!(sn, pn);
            assert_eq!(
                s_ipc.to_bits(),
                p_ipc.to_bits(),
                "{}: {} IPC diverged between 1 and 4 threads",
                s.workload,
                sn
            );
            assert_eq!(
                s_mpki.to_bits(),
                p_mpki.to_bits(),
                "{}: {} MPKI diverged between 1 and 4 threads",
                s.workload,
                sn
            );
        }
    }
}

#[test]
fn policy_trait_objects_are_send() {
    fn assert_send<T: Send>(_: &T) {}
    let llc = HierarchyConfig::single_thread().llc;
    for kind in [
        PolicyKind::Lru,
        PolicyKind::Sdbp,
        PolicyKind::Perceptron,
        PolicyKind::MpppbSingle,
    ] {
        let p: Box<dyn ReplacementPolicy + Send> = kind.build(&llc);
        assert_send(&p);
    }
}

//! Golden regression test for the Fig. 6 pipeline: a reduced-scale
//! MPKI/IPC matrix over representative workloads and policies must match
//! the committed reference bit-for-bit.
//!
//! This is the layout-change tripwire: the compiled-feature-plan, flat
//! weight arena, and SoA tag-array hot-path specializations all promise
//! bit-identical outputs, and this test holds them to it end to end
//! (trace generator -> hierarchy -> predictor -> CPU model).
//!
//! The matrix renderer and comparison live in `mrp_experiments::golden`
//! (shared with the `fig6_st_speedup --golden-check` driver mode that
//! `orchestrate ci` spawns). Regenerate after an *intentional* output
//! change with `MRP_UPDATE_GOLDEN=1 cargo test -p mrp-experiments --test
//! golden` or `cargo run -p mrp-experiments --bin fig6_st_speedup --
//! --bless`.
//!
//! The golden file records a fingerprint of the trace streams. The
//! reference values are only comparable when the trace streams match
//! (they depend on the `rand` implementation backing the generators), so
//! on fingerprint mismatch the regeneration instructions are printed and
//! the value comparison is skipped rather than failed.

use mrp_experiments::golden;

#[test]
fn fig6_matrix_matches_committed_golden() {
    golden::check_against_committed("fig6_golden.txt", &golden::fig6_golden());
}

//! Golden regression test for the Fig. 6 pipeline: a reduced-scale
//! MPKI/IPC matrix over representative workloads and policies must match
//! the committed reference bit-for-bit.
//!
//! This is the layout-change tripwire: the compiled-feature-plan, flat
//! weight arena, and SoA tag-array hot-path specializations all promise
//! bit-identical outputs, and this test holds them to it end to end
//! (trace generator -> hierarchy -> predictor -> CPU model).
//!
//! Regenerate after an *intentional* output change with
//! `MRP_UPDATE_GOLDEN=1 cargo test -p mrp-experiments --test golden`.
//!
//! The golden file records a fingerprint of the trace streams. The
//! reference values are only comparable when the trace streams match
//! (they depend on the `rand` implementation backing the generators), so
//! on fingerprint mismatch the test regeneration instructions are printed
//! and the value comparison is skipped rather than failed.

use std::fmt::Write as _;
use std::path::PathBuf;

use mrp_experiments::runner::{run_single_kind, run_single_mpppb_cv, StParams};
use mrp_experiments::PolicyKind;
use mrp_trace::workloads;

const GOLDEN_WORKLOADS: [&str; 4] = ["scanhot.protect", "loop.edge", "zipf.hot", "stream.rw"];
const GOLDEN_KINDS: [PolicyKind; 3] = [PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::MpppbSingle];

fn params() -> StParams {
    StParams {
        warmup: 50_000,
        measure: 200_000,
        seed: 1,
    }
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/fig6_golden.txt")
}

/// Fingerprint of the access streams the matrix is computed from: folds
/// the first accesses of every golden workload. Identifies the trace
/// generator + rand implementation, not the cache stack.
fn trace_fingerprint() -> u64 {
    let suite = workloads::suite();
    let mut fp = 0xcbf2_9ce4_8422_2325u64;
    for name in GOLDEN_WORKLOADS {
        let w = suite.iter().find(|w| w.name() == name).expect("workload");
        for access in w.trace(params().seed).take(256) {
            for v in [access.pc, access.address] {
                fp ^= v;
                fp = fp.wrapping_mul(0x100_0000_01b3);
            }
        }
    }
    fp
}

/// One matrix row: `workload policy mpki_bits ipc_bits # mpki ipc`.
fn compute_matrix() -> Vec<(String, String, f64, f64)> {
    let suite = workloads::suite();
    let mut rows = Vec::new();
    for name in GOLDEN_WORKLOADS {
        let w = suite.iter().find(|w| w.name() == name).expect("workload");
        for kind in GOLDEN_KINDS {
            let r = run_single_kind(w, kind, params());
            rows.push((name.to_string(), kind.name().to_string(), r.mpki, r.ipc));
        }
        let cv = run_single_mpppb_cv(w, params());
        rows.push((name.to_string(), "mpppb-cv".to_string(), cv.mpki, cv.ipc));
    }
    rows
}

fn render(fingerprint: u64, rows: &[(String, String, f64, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# fig6 golden matrix (reduced scale: warmup 50k / measure 200k, seed 1)"
    );
    let _ = writeln!(
        out,
        "# regenerate: MRP_UPDATE_GOLDEN=1 cargo test -p mrp-experiments --test golden"
    );
    let _ = writeln!(out, "fingerprint {fingerprint:016x}");
    for (w, p, mpki, ipc) in rows {
        let _ = writeln!(
            out,
            "{w} {p} {:016x} {:016x} # mpki={mpki:.4} ipc={ipc:.4}",
            mpki.to_bits(),
            ipc.to_bits()
        );
    }
    out
}

#[test]
fn fig6_matrix_matches_committed_golden() {
    let path = golden_path();
    let fingerprint = trace_fingerprint();
    let rows = compute_matrix();

    if std::env::var("MRP_UPDATE_GOLDEN").is_ok() {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("create results dir");
        }
        std::fs::write(&path, render(fingerprint, &rows)).expect("write golden");
        eprintln!("golden regenerated at {}", path.display());
        return;
    }

    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate it",
            path.display()
        )
    });

    let mut lines = committed
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'));
    let fp_line = lines.next().expect("fingerprint line");
    let committed_fp = u64::from_str_radix(
        fp_line
            .strip_prefix("fingerprint ")
            .expect("fingerprint prefix"),
        16,
    )
    .expect("fingerprint hex");
    if committed_fp != fingerprint {
        eprintln!(
            "trace fingerprint mismatch ({committed_fp:016x} committed vs {fingerprint:016x} \
             here): golden values were produced by a different rand/trace stream; \
             skipping value comparison. Regenerate with MRP_UPDATE_GOLDEN=1 to pin \
             this environment."
        );
        return;
    }

    let mut mismatches = Vec::new();
    for (line, (w, p, mpki, ipc)) in lines.zip(rows.iter()) {
        let mut fields = line.split_whitespace();
        let (gw, gp) = (
            fields.next().expect("workload field"),
            fields.next().expect("policy field"),
        );
        let g_mpki = u64::from_str_radix(fields.next().expect("mpki bits"), 16).expect("mpki hex");
        let g_ipc = u64::from_str_radix(fields.next().expect("ipc bits"), 16).expect("ipc hex");
        assert_eq!(
            (gw, gp),
            (w.as_str(), p.as_str()),
            "golden row order drifted"
        );
        if g_mpki != mpki.to_bits() || g_ipc != ipc.to_bits() {
            mismatches.push(format!(
                "{w}/{p}: mpki {} vs committed {}, ipc {} vs committed {}",
                mpki,
                f64::from_bits(g_mpki),
                ipc,
                f64::from_bits(g_ipc)
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "fig6 golden matrix drifted (outputs are no longer bit-identical):\n{}",
        mismatches.join("\n")
    );
}

//! Crash-injection tests for the orchestrator: SIGKILL the control
//! plane mid-campaign, abort a worker process, pre-seed manifests —
//! then demand a byte-identical `campaign.jsonl` versus an
//! uninterrupted baseline, with zero recomputation of journaled work.
//!
//! Scales are tiny (`cargo test` runs the debug profile) and every
//! smoke cell carries `--spin-ms` padding so a kill reliably lands
//! while the campaign is genuinely mid-flight.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

const SEED: u64 = 7;
const WARMUP: u64 = 2_000;
const MEASURE: u64 = 8_000;
/// Worker padding; part of the spec hash, so every campaign in these
/// tests must use the same value for aggregates to be comparable.
const SPIN_MS: u64 = 150;
/// Total cells in the smoke plan (3 workloads x 2 policies).
const JOBS: usize = 6;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mrp-orch-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// `orchestrate run` with the shared smoke-plan flags.
fn smoke_command(dir: &Path, procs: usize) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_orchestrate"));
    cmd.arg("run")
        .arg("--dir")
        .arg(dir)
        .args(["--plan", "smoke", "--name", "smoke"])
        .args(["--procs", &procs.to_string()])
        .args(["--seed", &SEED.to_string()])
        .args(["--warmup", &WARMUP.to_string()])
        .args(["--measure", &MEASURE.to_string()])
        .args(["--spin-ms", &SPIN_MS.to_string()]);
    cmd
}

/// Runs a campaign to completion and returns its stdout.
fn run_to_completion(dir: &Path, procs: usize) -> String {
    let out = smoke_command(dir, procs)
        .output()
        .expect("spawn orchestrate");
    assert!(
        out.status.success(),
        "campaign failed:\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

/// Extracts `key=N` from the `orchestrate summary:` line.
fn summary_field(stdout: &str, key: &str) -> u64 {
    let line = stdout
        .lines()
        .find(|l| l.starts_with("orchestrate summary:"))
        .unwrap_or_else(|| panic!("no summary line in:\n{stdout}"));
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no {key}= in summary: {line}"))
        .parse()
        .unwrap()
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn sigkilled_orchestrator_resumes_bit_identical_with_no_recompute() {
    let baseline = fresh_dir("crash-baseline");
    run_to_completion(&baseline, 2);

    // Launch serially (one worker at a time), wait until the journal
    // records at least two completed jobs, then SIGKILL the
    // orchestrator mid-campaign.
    let killed = fresh_dir("crash-killed");
    let mut child = smoke_command(&killed, 1)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn orchestrate");
    let journal = killed.join("journal.jsonl");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let done = std::fs::read_to_string(&journal)
            .map(|t| {
                t.lines()
                    .filter(|l| l.contains("\"type\":\"done\""))
                    .count()
            })
            .unwrap_or(0);
        if done >= 2 {
            break;
        }
        assert!(Instant::now() < deadline, "never reached 2 done jobs");
        assert!(
            child.try_wait().unwrap().is_none(),
            "campaign finished before the kill landed; raise SPIN_MS"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL orchestrator");
    child.wait().expect("reap orchestrator");
    // The in-flight worker was orphaned by the kill and keeps running;
    // give it time to finish writing its manifest so resume counters
    // are deterministic (the aggregate is byte-stable either way).
    std::thread::sleep(Duration::from_millis(2_000));

    // Resume with the identical plan: journaled done-jobs must be
    // re-verified and skipped, never recomputed, and the final
    // aggregate must match the uninterrupted baseline byte for byte.
    let out = smoke_command(&killed, 2).output().expect("resume");
    assert!(
        out.status.success(),
        "resume failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let skipped = summary_field(&stdout, "skipped");
    let deduped = summary_field(&stdout, "deduped");
    let ran = summary_field(&stdout, "ran");
    assert!(
        skipped >= 2,
        "journaled done-jobs were recomputed: {stdout}"
    );
    assert_eq!(
        skipped + deduped + ran,
        JOBS as u64,
        "resume lost or duplicated jobs: {stdout}"
    );
    assert_eq!(summary_field(&stdout, "failed"), 0, "{stdout}");

    assert_eq!(
        read(&baseline.join("campaign.jsonl")),
        read(&killed.join("campaign.jsonl")),
        "killed-and-resumed aggregate is not bit-identical to the baseline"
    );
    // The resume left an audit trail.
    let journal_text = read(&journal);
    assert!(journal_text.contains("\"type\":\"resume\""));
}

#[test]
fn crashed_worker_is_retried_and_aggregate_still_matches() {
    let baseline = fresh_dir("worker-baseline");
    run_to_completion(&baseline, 2);

    // Crash knob: the named job's first worker writes the marker file
    // and aborts (SIGABRT, no cleanup); with the marker present the
    // retry runs normally. Exactly one induced worker death.
    let dir = fresh_dir("worker-crash");
    let marker = dir.join("crash-marker");
    let out = smoke_command(&dir, 2)
        .args(["--retries", "1"])
        .env("MRP_ORCH_CRASH_JOB", "cell.loop.edge.lru")
        .env("MRP_ORCH_CRASH_MARKER", &marker)
        .output()
        .expect("spawn orchestrate");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        out.status.success(),
        "campaign failed despite retry:\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(marker.exists(), "crash knob never fired");
    assert!(summary_field(&stdout, "retried") >= 1, "{stdout}");
    assert_eq!(summary_field(&stdout, "done"), JOBS as u64, "{stdout}");
    assert_eq!(summary_field(&stdout, "failed"), 0, "{stdout}");

    let journal = read(&dir.join("journal.jsonl"));
    assert!(
        journal.contains("\"type\":\"fail\",\"job\":\"cell.loop.edge.lru\""),
        "worker death was not journaled:\n{journal}"
    );
    assert_eq!(
        read(&baseline.join("campaign.jsonl")),
        read(&dir.join("campaign.jsonl")),
        "aggregate after a crashed-and-retried worker must match the baseline"
    );
}

#[test]
fn preexisting_manifests_dedupe_without_recompute() {
    let baseline = fresh_dir("dedupe-baseline");
    run_to_completion(&baseline, 2);

    // A fresh campaign directory whose runs/ is pre-seeded with the
    // baseline's manifests: every job must dedupe by spec hash, with
    // zero worker spawns, and aggregate identically.
    let dir = fresh_dir("dedupe");
    let runs = dir.join("runs");
    std::fs::create_dir_all(&runs).unwrap();
    for entry in std::fs::read_dir(baseline.join("runs")).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), runs.join(entry.file_name())).unwrap();
    }
    let stdout = run_to_completion(&dir, 2);
    assert_eq!(summary_field(&stdout, "deduped"), JOBS as u64, "{stdout}");
    assert_eq!(summary_field(&stdout, "ran"), 0, "{stdout}");
    assert_eq!(
        read(&baseline.join("campaign.jsonl")),
        read(&dir.join("campaign.jsonl")),
        "deduped aggregate must match the baseline"
    );
}
